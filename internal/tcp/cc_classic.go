package tcp

import (
	"math"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// aimd is the shared state and behaviour of the classic loss-based
// variants: slow start below ssthresh, +1/W congestion avoidance above
// it, multiplicative decrease on loss. The concrete variants differ
// only in how they recover — Reno inflates and deflates, Tahoe
// collapses, NewReno repairs partial ACKs, SACK fills holes — so each
// embeds aimd and overrides the recovery hooks.
//
// The float64 operation sequences here replicate the pre-interface
// sender exactly; the pinned run digests depend on it.
//
// The window state itself — cwnd and ssthresh — lives in the sender's
// slab row (see Slab), so a population of classic flows keeps all its
// windows in two dense arrays.
type aimd struct {
	ops SenderOps
	cfg Config

	sl  *Slab
	row int32

	inRecovery bool
	recover    int64 // highest segment outstanding when loss was detected
	ecnRecover int64 // next ECN reduction allowed when sndUna passes this
}

func (a *aimd) Init(ops SenderOps, cfg Config) {
	a.ops = ops
	a.cfg = cfg
	a.sl, a.row = ops.StateSlab()
	a.sl.cwnd[a.row] = float64(cfg.InitialCwnd)
	a.sl.ssthresh[a.row] = float64(cfg.MaxWindow)
}

func (a *aimd) Window() float64   { return a.sl.cwnd[a.row] }
func (a *aimd) Ssthresh() float64 { return a.sl.ssthresh[a.row] }
func (a *aimd) InSlowStart() bool { return a.sl.cwnd[a.row] < a.sl.ssthresh[a.row] }
func (a *aimd) Recovering() bool  { return a.inRecovery }

func (a *aimd) OnAckReceived(*packet.Packet) {}
func (a *aimd) LossIndicated() bool          { return false }
func (a *aimd) OnRTTSample(units.Duration)   {}
func (a *aimd) RateDriven() bool             { return false }

// PaceInterval spreads one window over one smoothed RTT.
func (a *aimd) PaceInterval(srtt units.Duration) units.Duration {
	return units.Duration(int64(srtt) / a.ops.UsableWindow())
}

// grow opens the window per ACKed segment: slow start below ssthresh
// (+1 per segment), congestion avoidance above it (+1/W per segment).
func (a *aimd) grow(acked int64) {
	for i := int64(0); i < acked; i++ {
		if a.sl.cwnd[a.row] < a.sl.ssthresh[a.row] {
			a.sl.cwnd[a.row]++ // slow start: +1 per ACKed segment
		} else {
			a.sl.cwnd[a.row] += 1 / a.sl.cwnd[a.row] // congestion avoidance: +1/W
		}
	}
	if a.sl.cwnd[a.row] > float64(a.cfg.MaxWindow) {
		a.sl.cwnd[a.row] = float64(a.cfg.MaxWindow)
	}
}

// ackUpdate is the Reno core shared by the classic variants' OnAck: a
// new ACK during recovery deflates to ssthresh and exits; otherwise the
// window grows.
func (a *aimd) ackUpdate(acked int64) {
	if a.inRecovery {
		// Full ACK (or plain Reno): deflate and resume avoidance.
		a.sl.cwnd[a.row] = a.sl.ssthresh[a.row]
		a.inRecovery = false
		a.ops.ResetDupAcks()
		return
	}
	a.ops.ResetDupAcks()
	a.grow(acked)
}

// OnAck: Reno and Tahoe exit recovery (or just grow) on any new ACK.
func (a *aimd) OnAck(ack, acked int64) bool {
	a.ackUpdate(acked)
	return false
}

// OnDupAck (during recovery): window inflation — each duplicate ACK
// signals a departure.
func (a *aimd) OnDupAck() {
	a.sl.cwnd[a.row]++
	a.ops.SendNew()
}

// fastRetransmit is the loss reaction shared by the non-SACK variants:
// halve ssthresh against the actual flight, record the recovery point
// and retransmit the head of the window.
func (a *aimd) fastRetransmit() {
	flight := float64(a.ops.Outstanding())
	a.sl.ssthresh[a.row] = math.Max(flight/2, 2)
	a.recover = a.ops.SndNxt() - 1
	a.ops.Retransmit(a.ops.SndUna())
	a.ops.RestartRTO()
}

// OnTimeout collapses to one segment; the sender performs the go-back-N
// rewind and head retransmission itself.
func (a *aimd) OnTimeout() {
	flight := float64(a.ops.Outstanding())
	a.sl.ssthresh[a.row] = math.Max(flight/2, 2)
	a.sl.cwnd[a.row] = 1
	a.inRecovery = false
}

// OnECE halves the window like a loss, but with nothing to retransmit.
// At most one reduction per round trip, so a whole window of marked
// packets counts as one signal.
func (a *aimd) OnECE() bool {
	if a.inRecovery || a.ops.SndUna() < a.ecnRecover {
		return false
	}
	a.sl.ssthresh[a.row] = math.Max(a.sl.cwnd[a.row]/2, 2)
	a.sl.cwnd[a.row] = a.sl.ssthresh[a.row]
	a.ecnRecover = a.ops.SndNxt()
	return true
}

// renoCC: fast retransmit + fast recovery with window inflation.
type renoCC struct{ aimd }

func (c *renoCC) OnLoss() {
	c.fastRetransmit()
	c.inRecovery = true
	c.sl.cwnd[c.row] = c.sl.ssthresh[c.row] + 3
	c.ops.SendNew()
}

// tahoeCC: fast retransmit but no fast recovery — the window collapses
// to one segment, as on a timeout.
type tahoeCC struct{ aimd }

// OnDupAck: Tahoe never enters recovery, so recovery inflation cannot
// occur; explicit no-op for clarity.
func (c *tahoeCC) OnDupAck() {}

func (c *tahoeCC) OnLoss() {
	c.fastRetransmit()
	c.sl.cwnd[c.row] = 1
	c.ops.ResetDupAcks()
}

// newRenoCC: Reno plus partial-ACK retransmission during recovery.
type newRenoCC struct{ renoCC }

func (c *newRenoCC) OnAck(ack, acked int64) bool {
	if c.inRecovery && ack <= c.recover {
		// Partial ACK: retransmit the next hole, deflate by the amount
		// acked, stay in recovery.
		c.ops.Retransmit(c.ops.SndUna())
		c.sl.cwnd[c.row] = math.Max(c.sl.cwnd[c.row]-float64(acked)+1, 1)
		c.ops.ResetDupAcks()
		c.ops.RestartRTO()
		c.ops.SendNew()
		return true
	}
	c.ackUpdate(acked)
	return false
}
