package tcp

import (
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// BBRv1-style constants: the startup/drain gains, the PROBE_BW pacing
// cycle, filter windows and the inflight floor.
const (
	// bbrHighGain is 2/ln(2): fast enough to double delivered bandwidth
	// every round while pipe capacity is unknown.
	bbrHighGain = 2.885
	// bbrCwndGain caps inflight at this multiple of the estimated BDP
	// during PROBE_BW, absorbing delayed and stretched ACKs.
	bbrCwndGain = 2.0
	// bbrBwFilterLen is the windowed-max length of the delivery-rate
	// filter, in packet-timed rounds.
	bbrBwFilterLen = 10
	// bbrMinCwnd keeps enough inflight to merit ACK clocking.
	bbrMinCwnd = 4.0

	bbrMinRTTWindow     = 10 * units.Second
	bbrProbeRTTDuration = 200 * units.Millisecond
)

// bbrPacingCycle is the PROBE_BW gain cycle: probe above the estimated
// bandwidth for one round, drain the resulting queue the next, then
// cruise.
var bbrPacingCycle = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// bbrMode is the BBR state machine phase.
type bbrMode int

const (
	bbrStartup bbrMode = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

// bbrCC is a deterministic BBRv1-style model-based controller: it
// estimates the bottleneck bandwidth (windowed max of per-round
// delivery rate) and the propagation RTT (windowed min), paces at
// gain × btlBw, and caps inflight at cwndGain × BDP. Loss triggers
// retransmission — the sender still repairs holes and backs off its RTO
// — but does not shrink the model; only the model's own PROBE_RTT and
// post-timeout conservatism reduce the sending rate. This is the
// rate-driven regime whose buffer requirement the 2004 sqrt(n) rule
// does not describe.
type bbrCC struct {
	ops SenderOps
	cfg Config

	mode bbrMode

	// Delivery accounting. A "round" is one full window of ACKs: it ends
	// when the cumulative point passes the sndNxt recorded at its start.
	delivered      int64 // cumulative segments ACKed
	haveRound      bool
	roundStart     units.Time
	roundDelivered int64
	roundEndSeq    int64
	rounds         int64

	// btlBw: windowed max filter over per-round delivery rates, in
	// segments/second.
	bwRing  [bbrBwFilterLen]float64
	bwCount int64

	// minRTT: windowed min filter with PROBE_RTT refresh.
	haveMinRTT bool
	minRTT     units.Duration
	minRTTAt   units.Time

	// Startup full-pipe detection: bandwidth stopped growing >= 25% per
	// round for three consecutive rounds.
	fullBw       bool
	fullBwBase   float64
	fullBwRounds int

	cycleIdx     int
	probeRTTDone units.Time

	// Loss bookkeeping (retransmission only; the model is untouched).
	inRecovery bool
	recover    int64
	// postTimeout caps inflight at bbrMinCwnd until the next round
	// completes, mirroring BBR's conservative RTO response.
	postTimeout bool
}

func (c *bbrCC) Init(ops SenderOps, cfg Config) {
	c.ops = ops
	c.cfg = cfg
}

// btlBw is the current bottleneck-bandwidth estimate in segments/sec.
func (c *bbrCC) btlBw() float64 {
	var max float64
	for _, bw := range c.bwRing {
		if bw > max {
			max = bw
		}
	}
	return max
}

func (c *bbrCC) pushBw(bw float64) {
	c.bwRing[c.bwCount%bbrBwFilterLen] = bw
	c.bwCount++
}

// bdp is the estimated bandwidth-delay product in segments.
func (c *bbrCC) bdp() float64 {
	return c.btlBw() * float64(c.minRTT) / float64(units.Second)
}

func (c *bbrCC) pacingGain() float64 {
	switch c.mode {
	case bbrStartup:
		return bbrHighGain
	case bbrDrain:
		return 1 / bbrHighGain
	case bbrProbeBW:
		return bbrPacingCycle[c.cycleIdx]
	default: // bbrProbeRTT
		return 1
	}
}

func (c *bbrCC) cwndGain() float64 {
	switch c.mode {
	case bbrStartup, bbrDrain:
		return bbrHighGain
	default:
		return bbrCwndGain
	}
}

func (c *bbrCC) Window() float64 {
	if c.mode == bbrProbeRTT {
		return bbrMinCwnd
	}
	bw := c.btlBw()
	if bw <= 0 || !c.haveMinRTT {
		// No model yet: ACK-clocked startup from the initial window.
		if w := float64(c.cfg.InitialCwnd); w > bbrMinCwnd {
			return w
		}
		return bbrMinCwnd
	}
	w := c.cwndGain() * c.bdp()
	if c.postTimeout && w > bbrMinCwnd {
		w = bbrMinCwnd
	}
	if w < bbrMinCwnd {
		w = bbrMinCwnd
	}
	if w > float64(c.cfg.MaxWindow) {
		w = float64(c.cfg.MaxWindow)
	}
	return w
}

// Ssthresh: BBR has no slow-start threshold; report the window ceiling.
func (c *bbrCC) Ssthresh() float64 { return float64(c.cfg.MaxWindow) }

func (c *bbrCC) InSlowStart() bool { return c.mode == bbrStartup }
func (c *bbrCC) Recovering() bool  { return c.inRecovery }

func (c *bbrCC) OnAckReceived(*packet.Packet) {}
func (c *bbrCC) LossIndicated() bool          { return false }

func (c *bbrCC) OnAck(ack, acked int64) bool {
	now := c.ops.Now()
	c.delivered += acked
	handled := false
	if c.inRecovery {
		if ack <= c.recover {
			// Partial ACK: repair the next hole; the model, not the
			// repair, decides the rate.
			c.ops.Retransmit(c.ops.SndUna())
			c.ops.RestartRTO()
			handled = true
		} else {
			c.inRecovery = false
		}
		c.ops.ResetDupAcks()
	} else {
		c.ops.ResetDupAcks()
	}
	c.updateModel(now, ack)
	if handled {
		c.ops.SendNew()
	}
	return handled
}

// updateModel closes out rounds, feeds the bandwidth filter and runs
// the state machine.
func (c *bbrCC) updateModel(now units.Time, ack int64) {
	if ack >= c.roundEndSeq {
		if c.haveRound {
			if elapsed := now.Sub(c.roundStart); elapsed > 0 {
				bw := float64(c.delivered-c.roundDelivered) /
					(float64(elapsed) / float64(units.Second))
				c.pushBw(bw)
			}
			c.rounds++
		}
		c.haveRound = true
		c.roundStart = now
		c.roundDelivered = c.delivered
		c.roundEndSeq = c.ops.SndNxt()
		c.postTimeout = false
		c.advancePhase()
	}
	// PROBE_RTT entry: the min-RTT estimate has gone stale.
	if c.mode != bbrProbeRTT && c.haveMinRTT && now.Sub(c.minRTTAt) > bbrMinRTTWindow {
		c.mode = bbrProbeRTT
		c.probeRTTDone = now.Add(bbrProbeRTTDuration)
	}
	if c.mode == bbrProbeRTT && now >= c.probeRTTDone {
		c.minRTTAt = now
		if c.fullBw {
			c.mode = bbrProbeBW
			c.cycleIdx = 0
		} else {
			c.mode = bbrStartup
		}
	}
}

// advancePhase runs the per-round state machine transitions.
func (c *bbrCC) advancePhase() {
	switch c.mode {
	case bbrStartup:
		bw := c.btlBw()
		if bw >= c.fullBwBase*1.25 {
			c.fullBwBase = bw
			c.fullBwRounds = 0
			return
		}
		c.fullBwRounds++
		if c.fullBwRounds >= 3 {
			// Pipe full: stop probing up, drain the startup queue.
			c.fullBw = true
			c.mode = bbrDrain
		}
	case bbrDrain:
		if float64(c.ops.Outstanding()) <= c.bdp() {
			c.mode = bbrProbeBW
			c.cycleIdx = 0
		}
	case bbrProbeBW:
		c.cycleIdx = (c.cycleIdx + 1) % len(bbrPacingCycle)
	}
}

// OnDupAck during recovery: keep the pipe fed at the model's rate.
func (c *bbrCC) OnDupAck() { c.ops.SendNew() }

// OnLoss retransmits and marks the recovery episode, without reducing
// the window or the rate model.
func (c *bbrCC) OnLoss() {
	c.recover = c.ops.SndNxt() - 1
	c.inRecovery = true
	c.ops.Retransmit(c.ops.SndUna())
	c.ops.RestartRTO()
	c.ops.SendNew()
}

// OnTimeout: be conservative — cap inflight at the minimum until a full
// round of ACKs proves the path is moving again. The model survives.
func (c *bbrCC) OnTimeout() {
	c.inRecovery = false
	c.postTimeout = true
}

// OnECE: BBRv1 ignores ECN signals; the model alone sets the rate.
func (c *bbrCC) OnECE() bool { return false }

func (c *bbrCC) OnRTTSample(rtt units.Duration) {
	now := c.ops.Now()
	// The sample replaces the estimate when lower, or unconditionally
	// during PROBE_RTT (that is what the probe is for). Expiry is
	// handled by PROBE_RTT entry, not here.
	if !c.haveMinRTT || rtt <= c.minRTT || c.mode == bbrProbeRTT {
		c.haveMinRTT = true
		c.minRTT = rtt
		c.minRTTAt = now
	}
}

func (c *bbrCC) RateDriven() bool { return true }

// PaceInterval derives the inter-send gap from the model: one segment
// every 1/(gain × btlBw) seconds. Before the first bandwidth sample the
// sender falls back to spreading the window over the SRTT.
func (c *bbrCC) PaceInterval(srtt units.Duration) units.Duration {
	bw := c.btlBw()
	if bw <= 0 {
		return units.Duration(int64(srtt) / c.ops.UsableWindow())
	}
	iv := float64(units.Second) / (c.pacingGain() * bw)
	if iv < 1 {
		iv = 1
	}
	return units.Duration(iv)
}
