package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

func TestSackBlocksConstruction(t *testing.T) {
	ooo := map[int64]bool{5: true, 6: true, 7: true, 10: true, 12: true, 13: true}
	blocks := sackBlocks(ooo, 10, 3)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	// The run containing the fresh arrival (10) comes first.
	if blocks[0] != [2]int64{10, 11} {
		t.Errorf("first block = %v, want [10,11)", blocks[0])
	}
	// Remaining runs in descending order.
	if blocks[1] != [2]int64{12, 14} || blocks[2] != [2]int64{5, 8} {
		t.Errorf("blocks = %v", blocks)
	}
	// Cap respected.
	if got := sackBlocks(map[int64]bool{1: true, 3: true, 5: true, 7: true}, 7, 3); len(got) != 3 {
		t.Errorf("cap violated: %v", got)
	}
	if got := sackBlocks(nil, 0, 3); got != nil {
		t.Errorf("empty ooo produced %v", got)
	}
}

func TestScoreboardUpdateAndPipe(t *testing.T) {
	sb := newScoreboard()
	newly := sb.update([][2]int64{{5, 8}}, 0)
	if newly != 3 {
		t.Errorf("newly = %d, want 3", newly)
	}
	if sb.update([][2]int64{{5, 8}}, 0) != 0 {
		t.Error("re-reporting counted as new")
	}
	if sb.highSacked != 8 {
		t.Errorf("highSacked = %d", sb.highSacked)
	}
	// Segments 0..4 unsacked with highSacked 8: 0..4 where s+3 <= 8 are
	// lost (0..5 -> s <= 5). pipe over [0,8): lost 0..4 excluded, sacked
	// 5..7 excluded -> only segment 4? s=4: 8 >= 7 lost. So pipe = 0.
	if got := sb.pipe(0, 8); got != 0 {
		t.Errorf("pipe = %d, want 0", got)
	}
	// With un-sacked tail beyond highSacked: in flight.
	if got := sb.pipe(0, 12); got != 4 {
		t.Errorf("pipe = %d, want 4 (segments 8..11)", got)
	}
	// Retransmitting a hole adds it back to the pipe.
	if hole := sb.nextHole(0, 12); hole != 0 {
		t.Errorf("nextHole = %d, want 0", hole)
	}
	sb.rtxed[0] = true
	if got := sb.pipe(0, 12); got != 5 {
		t.Errorf("pipe after rtx = %d, want 5", got)
	}
	if hole := sb.nextHole(0, 12); hole != 1 {
		t.Errorf("nextHole after rtx = %d, want 1", hole)
	}
	// Advance clears below the new una.
	sb.advance(6)
	if sb.sacked[5] || sb.rtxed[0] {
		t.Error("advance did not clear old state")
	}
	if !sb.sacked[6] || !sb.sacked[7] {
		t.Error("advance dropped live state")
	}
}

func TestScoreboardLostRule(t *testing.T) {
	sb := newScoreboard()
	sb.update([][2]int64{{4, 5}}, 0)
	// highSacked = 5: lost(s) iff 5 >= s+3 -> s <= 2.
	for s, want := range map[int64]bool{0: true, 1: true, 2: true, 3: false} {
		if got := sb.lost(s); got != want {
			t.Errorf("lost(%d) = %v, want %v", s, got, want)
		}
	}
	if sb.lost(4) {
		t.Error("sacked segment reported lost")
	}
}

func TestSackRecoversMultipleLossesInOneRTT(t *testing.T) {
	// Drop three segments from one window; SACK should repair all of
	// them in a single recovery episode with no timeout. (Plain Reno
	// would collapse or time out here.)
	drops := map[int64]bool{30: false, 33: false, 36: false}
	c := newConn(Config{Flow: 1, Variant: Sack, TotalSegments: 400})
	c.fwd.drop = func(p *packet.Packet) bool {
		if p.IsAck() {
			return false
		}
		if done, ok := drops[p.Seq]; ok && !done {
			drops[p.Seq] = true
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	st := c.snd.Stats()
	if !c.snd.Finished() {
		t.Fatalf("SACK flow did not finish: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Errorf("SACK triple loss caused %d timeouts", st.Timeouts)
	}
	if st.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1", st.FastRecoveries)
	}
	if st.Retransmits != 3 {
		t.Errorf("Retransmits = %d, want exactly the 3 lost segments", st.Retransmits)
	}
}

func TestSackLosslessBehavesLikeReno(t *testing.T) {
	c := newConn(Config{Flow: 1, Variant: Sack, TotalSegments: 200})
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	st := c.snd.Stats()
	if !c.snd.Finished() || st.Retransmits != 0 || st.Timeouts != 0 {
		t.Errorf("lossless SACK flow misbehaved: %+v", st)
	}
}

func TestSackUnderRandomLoss(t *testing.T) {
	rng := sim.NewRNG(21)
	c := newConn(Config{Flow: 1, Variant: Sack, TotalSegments: 1000})
	c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() && rng.Float64() < 0.03 }
	c.snd.Start()
	c.sched.Run(units.Time(120 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("SACK flow did not survive random loss: %+v", c.snd.Stats())
	}
	if c.rcv.NextExpected() != 1000 {
		t.Errorf("receiver at %d, want 1000", c.rcv.NextExpected())
	}
}

func TestSackFewerTimeoutsThanReno(t *testing.T) {
	// Same 2.5% random loss pattern; SACK should need materially fewer
	// timeouts than Reno to move the same data.
	run := func(v Variant) Stats {
		rng := sim.NewRNG(77)
		c := newConn(Config{Flow: 1, Variant: v, TotalSegments: 2000})
		c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() && rng.Float64() < 0.025 }
		c.snd.Start()
		c.sched.Run(units.Time(300 * units.Second))
		if !c.snd.Finished() {
			t.Fatalf("%v flow did not finish: %+v", v, c.snd.Stats())
		}
		return c.snd.Stats()
	}
	reno := run(Reno)
	sack := run(Sack)
	if sack.Timeouts >= reno.Timeouts {
		t.Errorf("SACK timeouts (%d) not below Reno's (%d)", sack.Timeouts, reno.Timeouts)
	}
	// SACK retransmits only what was lost; Reno's go-back-N resends good
	// data after timeouts.
	if sack.Retransmits >= reno.Retransmits {
		t.Errorf("SACK retransmits (%d) not below Reno's (%d)", sack.Retransmits, reno.Retransmits)
	}
}

func TestSackCompletesFasterUnderLoss(t *testing.T) {
	run := func(v Variant) units.Time {
		rng := sim.NewRNG(99)
		c := newConn(Config{Flow: 1, Variant: v, TotalSegments: 1500})
		c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() && rng.Float64() < 0.02 }
		c.snd.Start()
		c.sched.Run(units.Time(600 * units.Second))
		if !c.snd.Finished() {
			t.Fatalf("%v flow did not finish", v)
		}
		return c.snd.Stats().Completed
	}
	reno := run(Reno)
	sack := run(Sack)
	if sack >= reno {
		t.Errorf("SACK completion %v not before Reno %v", sack, reno)
	}
}

func TestVariantStringSack(t *testing.T) {
	if Sack.String() != "sack" {
		t.Errorf("Sack.String() = %q", Sack.String())
	}
}
