package tcp

import (
	"math"

	"bufsim/internal/units"
)

// CUBIC parameters per RFC 8312: multiplicative decrease factor and the
// cubic scaling constant (units of segments/sec^3), plus the AIMD slope
// that makes the TCP-friendly region match a Reno flow reduced by beta.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
	// cubicAIMDAlpha = 3*(1-beta)/(1+beta): the per-RTT additive slope
	// of an AIMD flow with CUBIC's gentler decrease factor.
	cubicAIMDAlpha = 3 * (1 - cubicBeta) / (1 + cubicBeta)
)

// cubicCC implements RFC 8312-style CUBIC on NewReno recovery
// mechanics: loss detection, partial-ACK repair and pipe refill are the
// classic algorithms, while window growth between losses follows the
// cubic function W(t) = C·(t−K)³ + W_max anchored at the last loss
// epoch, with fast convergence and a TCP-friendly floor.
type cubicCC struct {
	aimd

	wMax float64 // window just before the last reduction

	// Epoch state, reset at every loss so the cubic curve re-anchors.
	haveEpoch  bool
	epochStart units.Time
	k          float64 // time (sec) for the curve to return to origin
	origin     float64 // plateau window the curve aims for
	wEst       float64 // TCP-friendly AIMD estimate for this epoch
}

func (c *cubicCC) InSlowStart() bool { return c.sl.cwnd[c.row] < c.sl.ssthresh[c.row] }

// OnAck mirrors NewReno's recovery handling; growth outside recovery is
// cubic instead of +1/W.
func (c *cubicCC) OnAck(ack, acked int64) bool {
	if c.inRecovery && ack <= c.recover {
		c.ops.Retransmit(c.ops.SndUna())
		c.sl.cwnd[c.row] = math.Max(c.sl.cwnd[c.row]-float64(acked)+1, 1)
		c.ops.ResetDupAcks()
		c.ops.RestartRTO()
		c.ops.SendNew()
		return true
	}
	if c.inRecovery {
		c.sl.cwnd[c.row] = c.sl.ssthresh[c.row]
		c.inRecovery = false
		c.ops.ResetDupAcks()
		return false
	}
	c.ops.ResetDupAcks()
	for i := int64(0); i < acked; i++ {
		if c.sl.cwnd[c.row] < c.sl.ssthresh[c.row] {
			c.sl.cwnd[c.row]++ // slow start
		} else {
			c.cubicGrow()
		}
	}
	if c.sl.cwnd[c.row] > float64(c.cfg.MaxWindow) {
		c.sl.cwnd[c.row] = float64(c.cfg.MaxWindow)
	}
	return false
}

// cubicGrow advances the window by one ACKed segment's worth of the
// cubic curve, floored by the TCP-friendly AIMD estimate.
func (c *cubicCC) cubicGrow() {
	now := c.ops.Now()
	if !c.haveEpoch {
		c.haveEpoch = true
		c.epochStart = now
		if c.sl.cwnd[c.row] < c.wMax {
			c.k = math.Cbrt((c.wMax - c.sl.cwnd[c.row]) / cubicC)
			c.origin = c.wMax
		} else {
			c.k = 0
			c.origin = c.sl.cwnd[c.row]
		}
		c.wEst = c.sl.cwnd[c.row]
	}
	// Target the curve one SRTT ahead, per RFC 8312 §4.1.
	t := float64(now.Sub(c.epochStart)+c.ops.SRTT()) / float64(units.Second)
	d := t - c.k
	target := c.origin + cubicC*d*d*d
	var inc float64
	if target > c.sl.cwnd[c.row] {
		inc = (target - c.sl.cwnd[c.row]) / c.sl.cwnd[c.row]
	} else {
		inc = 0.01 / c.sl.cwnd[c.row] // minimal probing around the plateau
	}
	// TCP-friendly region: never slower than AIMD with beta 0.7.
	c.wEst += cubicAIMDAlpha / c.sl.cwnd[c.row]
	if c.wEst > c.sl.cwnd[c.row]+inc {
		c.sl.cwnd[c.row] = c.wEst
	} else {
		c.sl.cwnd[c.row] += inc
	}
}

// reduce applies CUBIC's multiplicative decrease with fast convergence
// and re-anchors the epoch; the caller decides what the new cwnd is.
func (c *cubicCC) reduce() {
	c.haveEpoch = false
	if c.sl.cwnd[c.row] < c.wMax {
		// Fast convergence: the flow is ceding bandwidth; aim lower.
		c.wMax = c.sl.cwnd[c.row] * (2 - cubicBeta) / 2
	} else {
		c.wMax = c.sl.cwnd[c.row]
	}
	c.sl.ssthresh[c.row] = math.Max(c.sl.cwnd[c.row]*cubicBeta, 2)
}

func (c *cubicCC) OnLoss() {
	c.reduce()
	c.recover = c.ops.SndNxt() - 1
	c.ops.Retransmit(c.ops.SndUna())
	c.ops.RestartRTO()
	c.inRecovery = true
	c.sl.cwnd[c.row] = c.sl.ssthresh[c.row] + 3
	c.ops.SendNew()
}

func (c *cubicCC) OnTimeout() {
	c.haveEpoch = false
	c.wMax = c.sl.cwnd[c.row]
	c.sl.ssthresh[c.row] = math.Max(c.sl.cwnd[c.row]*cubicBeta, 2)
	c.sl.cwnd[c.row] = 1
	c.inRecovery = false
}

func (c *cubicCC) OnECE() bool {
	if c.inRecovery || c.ops.SndUna() < c.ecnRecover {
		return false
	}
	c.reduce()
	c.sl.cwnd[c.row] = c.sl.ssthresh[c.row]
	c.ecnRecover = c.ops.SndNxt()
	return true
}
