package tcp

import (
	"sort"
)

// SACK support: the receiver reports which out-of-order segments it holds
// (up to three [start,end) blocks per ACK, most-recent first, per RFC
// 2018), and the sender keeps a scoreboard so recovery retransmits exactly
// the holes — several per round trip if need be — instead of Reno's one
// per recovery or NewReno's one per partial ACK.
//
// The sender side is a simplified RFC 6675 pipe algorithm:
//
//   - pipe = segments in [sndUna, sndNxt) that are neither SACKed nor
//     deemed lost, plus retransmissions still in flight;
//   - a segment is deemed lost when the scoreboard holds SACKed data at
//     least dupThresh segments above it;
//   - during recovery the sender transmits whenever pipe < cwnd, favouring
//     the lowest unretransmitted hole, then new data.

// dupThresh is the classic three-duplicate-ACK loss threshold, reused as
// the SACK "FackCount" distance.
const dupThresh = 3

// sackScoreboard is the sender-side view of receiver holdings.
type sackScoreboard struct {
	sacked     map[int64]bool
	rtxed      map[int64]bool // retransmitted, not yet cumulatively ACKed
	highSacked int64          // highest SACKed segment + 1 (exclusive)
}

func newScoreboard() *sackScoreboard {
	return &sackScoreboard{sacked: make(map[int64]bool), rtxed: make(map[int64]bool)}
}

// update records the blocks from one ACK and returns how many previously
// unknown segments were newly SACKed.
func (sb *sackScoreboard) update(blocks [][2]int64, una int64) int {
	newly := 0
	for _, b := range blocks {
		for s := b[0]; s < b[1]; s++ {
			if s < una || sb.sacked[s] {
				continue
			}
			sb.sacked[s] = true
			newly++
			if s+1 > sb.highSacked {
				sb.highSacked = s + 1
			}
		}
	}
	return newly
}

// advance drops scoreboard state below the new cumulative ACK point.
func (sb *sackScoreboard) advance(una int64) {
	for s := range sb.sacked {
		if s < una {
			delete(sb.sacked, s)
		}
	}
	for s := range sb.rtxed {
		if s < una {
			delete(sb.rtxed, s)
		}
	}
	if sb.highSacked < una {
		sb.highSacked = una
	}
}

// lost reports whether segment s should be treated as lost: SACKed data
// exists at least dupThresh above it.
func (sb *sackScoreboard) lost(s int64) bool {
	return !sb.sacked[s] && sb.highSacked >= s+dupThresh
}

// pipe estimates the segments in flight within [una, nxt).
func (sb *sackScoreboard) pipe(una, nxt int64) int64 {
	var p int64
	for s := una; s < nxt; s++ {
		switch {
		case sb.rtxed[s]:
			p++ // the retransmission is in flight
		case sb.sacked[s]:
			// at the receiver, not in flight
		case sb.lost(s):
			// presumed gone
		default:
			p++
		}
	}
	return p
}

// nextHole returns the lowest segment in [una, limit) that is lost and not
// yet retransmitted, or -1.
func (sb *sackScoreboard) nextHole(una, limit int64) int64 {
	for s := una; s < limit && s < sb.highSacked; s++ {
		if sb.lost(s) && !sb.rtxed[s] {
			return s
		}
	}
	return -1
}

// reset clears everything (used on RTO, where go-back-N supersedes the
// scoreboard).
func (sb *sackScoreboard) reset() {
	sb.sacked = make(map[int64]bool)
	sb.rtxed = make(map[int64]bool)
	sb.highSacked = 0
}

// --- Receiver-side block construction ---

// sackBlocks builds up to max SACK blocks from the receiver's out-of-order
// set: the block containing justArrived (if any) first, the remaining runs
// in descending order, per RFC 2018's freshness rule.
func sackBlocks(ooo map[int64]bool, justArrived int64, max int) [][2]int64 {
	if len(ooo) == 0 {
		return nil
	}
	segs := make([]int64, 0, len(ooo))
	for s := range ooo {
		segs = append(segs, s)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	var runs [][2]int64
	start := segs[0]
	prev := segs[0]
	for _, s := range segs[1:] {
		if s == prev+1 {
			prev = s
			continue
		}
		runs = append(runs, [2]int64{start, prev + 1})
		start, prev = s, s
	}
	runs = append(runs, [2]int64{start, prev + 1})

	// Freshest-first ordering.
	sort.Slice(runs, func(i, j int) bool {
		ci := runs[i][0] <= justArrived && justArrived < runs[i][1]
		cj := runs[j][0] <= justArrived && justArrived < runs[j][1]
		if ci != cj {
			return ci
		}
		return runs[i][0] > runs[j][0]
	})
	if len(runs) > max {
		runs = runs[:max]
	}
	return runs
}
