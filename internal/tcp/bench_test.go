package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// BenchmarkLosslessTransfer measures the full protocol hot path — send,
// receive, ACK, window growth — over an ideal pipe, in simulated segments
// per benchmark op (one op = one 1000-segment transfer).
func BenchmarkLosslessTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := newConn(Config{Flow: 1, TotalSegments: 1000})
		c.snd.Start()
		c.sched.Run(units.Time(60 * units.Second))
		if !c.snd.Finished() {
			b.Fatal("transfer did not finish")
		}
	}
}

// BenchmarkSackTransferUnderLoss measures SACK recovery machinery cost
// under 2% loss.
func BenchmarkSackTransferUnderLoss(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		drop := 0
		c := newConn(Config{Flow: 1, Variant: Sack, TotalSegments: 1000})
		c.fwd.drop = func(p *packet.Packet) bool {
			if p.IsAck() {
				return false
			}
			drop++
			return drop%50 == 0
		}
		c.snd.Start()
		c.sched.Run(units.Time(300 * units.Second))
		if !c.snd.Finished() {
			b.Fatal("transfer did not finish")
		}
	}
}
