package tcp

import (
	"fmt"

	"bufsim/internal/audit"
	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// delAckTimeout is the standard delayed-ACK timer.
const delAckTimeout = 100 * units.Millisecond

// Receiver is the TCP sink: it reassembles the segment stream and emits
// cumulative acknowledgements. Every out-of-order arrival triggers an
// immediate duplicate ACK (that is what drives the sender's fast
// retransmit); in-order arrivals are acknowledged immediately, or every
// second segment when delayed ACKs are enabled.
type Receiver struct {
	cfg   Config
	sched *sim.Scheduler
	out   packet.Handler // reverse path toward the sender

	nextExpected int64
	ooo          map[int64]bool // out-of-order segments above nextExpected

	unackedSegs int // in-order segments not yet acknowledged (delayed ACK)
	delAck      sim.Event

	finished bool

	// echoECE is set when the last data segment carried a CE mark; the
	// next ACK echoes it (per-packet echo — a simplification of RFC
	// 3168's ECE-until-CWR handshake that preserves the control loop).
	echoECE bool
	// CEMarksSeen counts congestion-experienced arrivals.
	CEMarksSeen int64

	// ReceivedSegments counts distinct data segments delivered in order
	// (duplicates from spurious retransmissions are not recounted).
	ReceivedSegments int64
	// DupSegments counts duplicate data arrivals.
	DupSegments int64
	// AcksSent counts acknowledgements emitted.
	AcksSent int64
	// CompletedAt is when the final segment of a finite flow arrived, in
	// the paper's AFCT sense ("until the last packet reaches the
	// destination"); units.Never until then.
	CompletedAt units.Time

	// OnComplete fires once when a finite flow's data has fully arrived.
	OnComplete func(now units.Time)

	// aud, when non-nil, receives invariant violations (see SetAuditor in
	// audit.go); audNext is the auditor's high-water mark of nextExpected.
	aud     *audit.Auditor
	audNext int64
}

// Receiver event opcodes (see sim.Actor).
const opRecvDelAck int32 = 0

// OnEvent implements sim.Actor: the delayed-ACK timer is a typed kernel
// event.
func (r *Receiver) OnEvent(op int32, _ any) {
	if op == opRecvDelAck {
		r.sendAck()
	}
}

// NewReceiver returns a receiver sending ACKs to out.
func NewReceiver(cfg Config, sched *sim.Scheduler, out packet.Handler) *Receiver {
	cfg = cfg.withDefaults()
	return &Receiver{
		cfg:         cfg,
		sched:       sched,
		out:         out,
		ooo:         make(map[int64]bool),
		CompletedAt: units.Never,
	}
}

// NextExpected returns the receiver's cumulative-ACK point.
func (r *Receiver) NextExpected() int64 { return r.nextExpected }

// Handle implements packet.Handler: the receiver consumes data segments.
func (r *Receiver) Handle(p *packet.Packet) {
	if p.IsAck() {
		panic(fmt.Sprintf("tcp: receiver for flow %d received ACK %v", r.cfg.Flow, p))
	}
	if p.Flags&packet.FlagCE != 0 {
		r.echoECE = true
		r.CEMarksSeen++
	}
	switch {
	case p.Seq == r.nextExpected:
		r.nextExpected++
		r.ReceivedSegments++
		// Drain any contiguous out-of-order run (each segment was
		// already counted in ReceivedSegments when it arrived).
		for r.ooo[r.nextExpected] {
			delete(r.ooo, r.nextExpected)
			r.nextExpected++
		}
		r.onInOrder()
	case p.Seq > r.nextExpected:
		if r.ooo[p.Seq] {
			r.DupSegments++
		} else {
			r.ooo[p.Seq] = true
			r.ReceivedSegments++
		}
		// Out-of-order: immediate duplicate ACK (with SACK blocks when
		// the connection negotiated them).
		r.sendAckFor(p.Seq)
	default:
		// Below the cumulative point: spurious retransmission. ACK so
		// the sender can make progress if its state is behind.
		r.DupSegments++
		r.sendAck()
	}

	if !r.finished && r.cfg.TotalSegments > 0 && r.nextExpected >= r.cfg.TotalSegments {
		r.finished = true
		r.CompletedAt = r.sched.Now()
		if r.OnComplete != nil {
			r.OnComplete(r.CompletedAt)
		}
	}
	if r.aud != nil {
		r.auditState(r.sched.Now())
	}
}

// onInOrder applies the (possibly delayed) acknowledgement policy for an
// in-order arrival.
func (r *Receiver) onInOrder() {
	if !r.cfg.DelayedAck {
		r.sendAck()
		return
	}
	r.unackedSegs++
	if r.unackedSegs >= 2 {
		r.sendAck()
		return
	}
	if !r.sched.Active(r.delAck) {
		r.delAck = r.sched.PostAfter(delAckTimeout, r, opRecvDelAck, nil)
	}
}

// sendAck emits a cumulative ACK.
func (r *Receiver) sendAck() { r.sendAckFor(-1) }

// sendAckFor emits a cumulative ACK; justArrived (or -1) orders the SACK
// blocks freshest-first when the variant negotiates SACK.
func (r *Receiver) sendAckFor(justArrived int64) {
	r.unackedSegs = 0
	r.sched.Cancel(r.delAck)
	r.AcksSent++
	var blocks [][2]int64
	if r.cfg.Variant.generatesSack() {
		blocks = sackBlocks(r.ooo, justArrived, 3)
	}
	flags := packet.FlagACK
	if r.echoECE {
		flags |= packet.FlagECE
		r.echoECE = false
	}
	r.out.Handle(&packet.Packet{
		Flow:  r.cfg.Flow,
		Src:   r.cfg.Dst, // ACKs flow from receiver back to sender
		Dst:   r.cfg.Src,
		Ack:   r.nextExpected,
		Sack:  blocks,
		Flags: flags,
		Size:  r.cfg.AckSize,
		Sent:  r.sched.Now(),
	})
}
