package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// pipe is an infinite-bandwidth, fixed-delay path with programmable loss,
// for exercising protocol logic in isolation from link-rate effects.
type pipe struct {
	sched *sim.Scheduler
	delay units.Duration
	dst   packet.Handler
	drop  func(p *packet.Packet) bool
	count int64 // data packets offered
}

func (pp *pipe) Handle(p *packet.Packet) {
	if !p.IsAck() {
		pp.count++
	}
	if pp.drop != nil && pp.drop(p) {
		return
	}
	pp.sched.After(pp.delay, func() { pp.dst.Handle(p) })
}

// conn wires a sender and receiver over two pipes with a 20 ms RTT.
type conn struct {
	sched *sim.Scheduler
	snd   *Sender
	rcv   *Receiver
	fwd   *pipe
	rev   *pipe
}

func newConn(cfg Config) *conn {
	s := sim.NewScheduler()
	fwd := &pipe{sched: s, delay: 10 * units.Millisecond}
	rev := &pipe{sched: s, delay: 10 * units.Millisecond}
	snd := NewSender(cfg, s, fwd)
	rcv := NewReceiver(cfg, s, rev)
	fwd.dst = rcv
	rev.dst = snd
	return &conn{sched: s, snd: snd, rcv: rcv, fwd: fwd, rev: rev}
}

func TestShortFlowCompletes(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 10})
	var senderDone, receiverDone units.Time = units.Never, units.Never
	c.snd.OnComplete = func(now units.Time) { senderDone = now }
	c.rcv.OnComplete = func(now units.Time) { receiverDone = now }
	c.snd.Start()
	c.sched.Run(units.Time(10 * units.Second))

	if !c.snd.Finished() {
		t.Fatal("sender did not finish")
	}
	if c.rcv.ReceivedSegments != 10 {
		t.Errorf("receiver got %d segments, want 10", c.rcv.ReceivedSegments)
	}
	if receiverDone == units.Never || senderDone == units.Never {
		t.Fatal("completion callbacks did not fire")
	}
	if receiverDone >= senderDone {
		t.Errorf("receiver completed at %v, after sender at %v", receiverDone, senderDone)
	}
	// 10 segments with IW=2 in slow start: windows 2,4,8 -> 3 RTTs of
	// 20 ms for the data, plus 10 ms for the last segment's one-way trip.
	if receiverDone < units.Time(40*units.Millisecond) || receiverDone > units.Time(120*units.Millisecond) {
		t.Errorf("completion at %v, want a few RTTs", receiverDone)
	}
	if st := c.snd.Stats(); st.Retransmits != 0 || st.Timeouts != 0 {
		t.Errorf("lossless flow retransmitted: %+v", st)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	c := newConn(Config{Flow: 1}) // long-lived
	c.snd.Start()
	// After ~1 RTT the initial window (2) is acked: cwnd 4. After 2: 8.
	c.sched.Run(units.Time(25 * units.Millisecond))
	if got := c.snd.Cwnd(); got < 3.9 || got > 4.1 {
		t.Errorf("cwnd after 1 RTT = %v, want 4", got)
	}
	c.sched.Run(units.Time(45 * units.Millisecond))
	if got := c.snd.Cwnd(); got < 7.9 || got > 8.1 {
		t.Errorf("cwnd after 2 RTTs = %v, want 8", got)
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	cfg := Config{Flow: 1, MaxWindow: 1 << 20}
	c := newConn(cfg)
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Millisecond))
	// Force CA from a known point (default variant: Reno).
	sl, row := c.snd.StateSlab()
	sl.ssthresh[row] = 4
	sl.cwnd[row] = 4
	start := c.snd.Cwnd()
	// Over the next RTT, cwnd should grow by ~1 segment.
	c.sched.Run(units.Time(50 * units.Millisecond))
	grew := c.snd.Cwnd() - start
	if grew < 0.8 || grew > 1.6 {
		t.Errorf("CA growth over 1 RTT = %v segments, want ~1", grew)
	}
}

func TestMaxWindowCaps(t *testing.T) {
	c := newConn(Config{Flow: 1, MaxWindow: 12})
	c.snd.Start()
	c.sched.Run(units.Time(2 * units.Second))
	if c.snd.Outstanding() > 12 {
		t.Errorf("outstanding = %d, exceeds MaxWindow 12", c.snd.Outstanding())
	}
	if c.snd.Cwnd() > 12 {
		t.Errorf("cwnd = %v, exceeds MaxWindow 12", c.snd.Cwnd())
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	dropSeq := int64(20)
	dropped := false
	c := newConn(Config{Flow: 1})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == dropSeq && !dropped {
			dropped = true
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(2 * units.Second))
	st := c.snd.Stats()
	if !dropped {
		t.Fatal("test never dropped the segment")
	}
	if st.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1", st.FastRecoveries)
	}
	if st.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0 (single loss should not time out)", st.Timeouts)
	}
	if st.Retransmits != 1 {
		t.Errorf("Retransmits = %d, want 1", st.Retransmits)
	}
	// The stream must still be fully in-order at the receiver.
	if c.rcv.NextExpected() < dropSeq {
		t.Errorf("receiver stuck at %d", c.rcv.NextExpected())
	}
}

func TestWindowHalvesOnFastRetransmit(t *testing.T) {
	// Drop one segment; slow start keeps growing the window until the
	// third duplicate ACK arrives, so compare the post-recovery window
	// against the peak (the sawtooth's Wmax), which should halve.
	dropped := false
	c := newConn(Config{Flow: 1})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == 40 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	c.snd.Start()
	peak := 0.0
	for c.snd.Stats().FastRecoveries == 0 && c.sched.Now() < units.Time(5*units.Second) {
		if c.snd.Cwnd() > peak {
			peak = c.snd.Cwnd()
		}
		if !c.sched.Step() {
			break
		}
	}
	// Run until recovery exits.
	for c.snd.cc.Recovering() && c.sched.Now() < units.Time(5*units.Second) {
		if !c.sched.Step() {
			break
		}
	}
	if !dropped {
		t.Fatal("loss never happened")
	}
	got := c.snd.Cwnd()
	if got < peak*0.35 || got > peak*0.65 {
		t.Errorf("cwnd after recovery = %v, want about half of peak %v", got, peak)
	}
}

func TestTimeoutRecovery(t *testing.T) {
	// Black-hole the path for a while: every data packet sent between
	// t=100ms and t=400ms is lost. The sender must eventually time out
	// and retransmit successfully.
	c := newConn(Config{Flow: 1, TotalSegments: 200})
	c.fwd.drop = func(p *packet.Packet) bool {
		now := c.sched.Now()
		return !p.IsAck() &&
			now > units.Time(100*units.Millisecond) &&
			now < units.Time(400*units.Millisecond)
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("flow did not recover from blackout: una=%d nxt=%d stats=%+v",
			c.snd.SndUna(), c.snd.SndNxt(), c.snd.Stats())
	}
	if st := c.snd.Stats(); st.Timeouts == 0 {
		t.Errorf("expected at least one timeout, got %+v", st)
	}
	if c.rcv.ReceivedSegments < 200 {
		t.Errorf("receiver got %d segments, want >= 200", c.rcv.ReceivedSegments)
	}
}

func TestTimeoutSetsCwndToOne(t *testing.T) {
	c := newConn(Config{Flow: 1})
	c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() && c.sched.Now() > units.Time(50*units.Millisecond) }
	c.snd.Start()
	for c.snd.Stats().Timeouts == 0 && c.sched.Step() {
	}
	if c.snd.Stats().Timeouts == 0 {
		t.Fatal("no timeout occurred")
	}
	if got := c.snd.Cwnd(); got != 1 {
		t.Errorf("cwnd after timeout = %v, want 1", got)
	}
	if c.snd.SndNxt() != c.snd.SndUna()+1 {
		t.Errorf("timeout did not go-back-N: una=%d nxt=%d", c.snd.SndUna(), c.snd.SndNxt())
	}
}

func TestExponentialBackoff(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 5})
	c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() } // total blackout
	c.snd.Start()
	var timeoutTimes []units.Time
	prev := int64(0)
	for c.sched.Now() < units.Time(20*units.Second) && c.sched.Step() {
		if n := c.snd.Stats().Timeouts; n > prev {
			prev = n
			timeoutTimes = append(timeoutTimes, c.sched.Now())
		}
	}
	if len(timeoutTimes) < 4 {
		t.Fatalf("want >= 4 timeouts, got %d", len(timeoutTimes))
	}
	g1 := timeoutTimes[1].Sub(timeoutTimes[0])
	g2 := timeoutTimes[2].Sub(timeoutTimes[1])
	g3 := timeoutTimes[3].Sub(timeoutTimes[2])
	if !(g2 >= g1*2*9/10 && g3 >= g2*2*9/10) {
		t.Errorf("timeout gaps not doubling: %v %v %v", g1, g2, g3)
	}
}

func TestRTTEstimation(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 100})
	c.snd.Start()
	c.sched.Run(units.Time(10 * units.Second))
	srtt := c.snd.SRTT()
	if srtt < 19*units.Millisecond || srtt > 22*units.Millisecond {
		t.Errorf("SRTT = %v, want ~20ms", srtt)
	}
	if c.snd.RTO() < c.snd.cfg.MinRTO {
		t.Errorf("RTO = %v below MinRTO", c.snd.RTO())
	}
}

func TestReceiverReassemblyOutOfOrder(t *testing.T) {
	s := sim.NewScheduler()
	var acks []int64
	out := packet.HandlerFunc(func(p *packet.Packet) { acks = append(acks, p.Ack) })
	r := NewReceiver(Config{Flow: 1, TotalSegments: 4}.withDefaults(), s, out)
	mk := func(seq int64) *packet.Packet {
		return &packet.Packet{Flow: 1, Seq: seq, Size: 1000}
	}
	r.Handle(mk(0)) // ack 1
	r.Handle(mk(2)) // dup ack 1
	r.Handle(mk(3)) // dup ack 1
	r.Handle(mk(1)) // ack 4 (drains out-of-order run)
	want := []int64{1, 1, 1, 4}
	if len(acks) != len(want) {
		t.Fatalf("acks = %v, want %v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	if r.CompletedAt == units.Never {
		t.Error("receiver did not complete")
	}
	if r.DupSegments != 0 {
		t.Errorf("DupSegments = %d, want 0", r.DupSegments)
	}
}

func TestReceiverCountsDuplicates(t *testing.T) {
	s := sim.NewScheduler()
	r := NewReceiver(Config{Flow: 1}.withDefaults(), s, packet.HandlerFunc(func(*packet.Packet) {}))
	mk := func(seq int64) *packet.Packet { return &packet.Packet{Flow: 1, Seq: seq, Size: 1000} }
	r.Handle(mk(0))
	r.Handle(mk(0)) // below cumulative point
	r.Handle(mk(5))
	r.Handle(mk(5)) // duplicate out-of-order
	if r.DupSegments != 2 {
		t.Errorf("DupSegments = %d, want 2", r.DupSegments)
	}
}

func TestDelayedAckCoalesces(t *testing.T) {
	cfg := Config{Flow: 1, TotalSegments: 100, DelayedAck: true}
	c := newConn(cfg)
	c.snd.Start()
	c.sched.Run(units.Time(10 * units.Second))
	if !c.snd.Finished() {
		t.Fatal("flow did not complete with delayed ACKs")
	}
	// With every-other-segment acking, ACK count is roughly half the
	// segment count (plus delayed-timer flushes).
	if c.rcv.AcksSent >= 80 {
		t.Errorf("AcksSent = %d, want well under the 100 segments", c.rcv.AcksSent)
	}
}

func TestDelayedAckTimerFlushesLoneSegment(t *testing.T) {
	s := sim.NewScheduler()
	var ackAt units.Time = units.Never
	out := packet.HandlerFunc(func(p *packet.Packet) { ackAt = s.Now() })
	r := NewReceiver(Config{Flow: 1, DelayedAck: true}.withDefaults(), s, out)
	r.Handle(&packet.Packet{Flow: 1, Seq: 0, Size: 1000})
	s.Run(units.Time(units.Second))
	if ackAt != units.Time(delAckTimeout) {
		t.Errorf("lone segment acked at %v, want %v", ackAt, delAckTimeout)
	}
}

func TestTahoeCollapsesWindowOnLoss(t *testing.T) {
	dropped := false
	c := newConn(Config{Flow: 1, Variant: Tahoe})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == 30 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	c.snd.Start()
	for c.snd.Stats().FastRecoveries == 0 && c.sched.Step() {
	}
	if got := c.snd.Cwnd(); got != 1 {
		t.Errorf("Tahoe cwnd after loss = %v, want 1", got)
	}
}

func TestNewRenoPartialAckRetransmits(t *testing.T) {
	// Drop two segments from the same window; NewReno should recover
	// both within one recovery episode (1 fast-retransmit + 1 partial-ACK
	// retransmission) without a timeout.
	drops := map[int64]bool{30: false, 34: false}
	c := newConn(Config{Flow: 1, Variant: NewReno, TotalSegments: 400})
	c.fwd.drop = func(p *packet.Packet) bool {
		if p.IsAck() {
			return false
		}
		if done, ok := drops[p.Seq]; ok && !done {
			drops[p.Seq] = true
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	st := c.snd.Stats()
	if !c.snd.Finished() {
		t.Fatalf("flow did not finish: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Errorf("NewReno double loss caused %d timeouts, want 0", st.Timeouts)
	}
	if st.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1", st.FastRecoveries)
	}
}

func TestSenderRejectsDataPacket(t *testing.T) {
	c := newConn(Config{Flow: 1})
	defer func() {
		if recover() == nil {
			t.Error("sender accepted a data packet")
		}
	}()
	c.snd.Handle(&packet.Packet{Flow: 1, Seq: 0})
}

func TestReceiverRejectsAck(t *testing.T) {
	c := newConn(Config{Flow: 1})
	defer func() {
		if recover() == nil {
			t.Error("receiver accepted an ACK")
		}
	}()
	c.rcv.Handle(&packet.Packet{Flow: 1, Flags: packet.FlagACK})
}

func TestDoubleStartPanics(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 1})
	c.snd.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	c.snd.Start()
}

func TestVariantString(t *testing.T) {
	if Reno.String() != "reno" || Tahoe.String() != "tahoe" || NewReno.String() != "newreno" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() != "variant(9)" {
		t.Error("unknown variant formatting wrong")
	}
}

func TestRandomLossStreamIntegrity(t *testing.T) {
	// Property-style: under 2% random loss the receiver must still get a
	// gapless stream and the flow must finish.
	rng := sim.NewRNG(123)
	c := newConn(Config{Flow: 1, TotalSegments: 500})
	c.fwd.drop = func(p *packet.Packet) bool { return !p.IsAck() && rng.Float64() < 0.02 }
	c.snd.Start()
	c.sched.Run(units.Time(120 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("flow did not finish under random loss: %+v", c.snd.Stats())
	}
	if c.rcv.NextExpected() != 500 {
		t.Errorf("receiver cumulative point = %d, want 500", c.rcv.NextExpected())
	}
}

func TestAckLossTolerated(t *testing.T) {
	rng := sim.NewRNG(77)
	c := newConn(Config{Flow: 1, TotalSegments: 300})
	c.rev.drop = func(p *packet.Packet) bool { return rng.Float64() < 0.05 }
	c.snd.Start()
	c.sched.Run(units.Time(60 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("flow did not finish under ACK loss: %+v", c.snd.Stats())
	}
}

func TestStartedStampsStats(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 2})
	c.sched.At(units.Time(5*units.Second), func() { c.snd.Start() })
	c.sched.Run(units.Time(10 * units.Second))
	st := c.snd.Stats()
	if st.Started != units.Time(5*units.Second) {
		t.Errorf("Started = %v, want 5s", st.Started)
	}
	if st.Completed == units.Never {
		t.Error("Completed not stamped")
	}
}
