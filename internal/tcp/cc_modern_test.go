package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// TestCubicReducesByBeta: a loss must multiply the window by the CUBIC
// beta (0.7), not Reno's 0.5 — the gentler decrease is the reason CUBIC
// needs less buffer than the sqrt rule predicts.
func TestCubicReducesByBeta(t *testing.T) {
	dropSeq, dropped := int64(40), false
	c := newConn(Config{Flow: 1, Variant: Cubic})
	var before float64
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == dropSeq && !dropped {
			dropped = true
			before = c.snd.Cwnd()
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(2 * units.Second))
	if !dropped {
		t.Fatal("drop never triggered")
	}
	// The window keeps growing between the drop and the third dupack, so
	// anchor the check on the controller's own W_max (the window at
	// reduction time): ssthresh must be beta x W_max, not half of it.
	cc := c.snd.cc.(*cubicCC)
	if cc.wMax < before {
		t.Errorf("wMax = %v, below the window at drop time %v", cc.wMax, before)
	}
	want := cc.wMax * cubicBeta
	if got := cc.Ssthresh(); got < want*0.99 || got > want*1.01 {
		t.Errorf("ssthresh after loss = %v, want %v (W_max %v x beta %v)", got, want, cc.wMax, cubicBeta)
	}
	if st := c.snd.Stats(); st.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1", st.FastRecoveries)
	}
}

// TestCubicProbesBeyondWMax: after a loss anchors W_max, the cubic curve
// is concave up to the anchor and convex beyond it — given time, the
// window must pass its pre-loss size (unlike Reno's linear +1/RTT, which
// this harness's short horizon would not carry that far alone... the
// point here is only that growth does not stall at W_max).
func TestCubicProbesBeyondWMax(t *testing.T) {
	dropSeq, dropped := int64(60), false
	var wMax float64
	c := newConn(Config{Flow: 1, Variant: Cubic, MaxWindow: 512})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == dropSeq && !dropped {
			dropped = true
			wMax = c.snd.Cwnd()
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(20 * units.Second))
	if !dropped {
		t.Fatal("drop never triggered")
	}
	if got := c.snd.Cwnd(); got <= wMax {
		t.Errorf("cwnd = %v after 20s, never probed beyond W_max %v", got, wMax)
	}
}

// TestCubicECNReduces: CUBIC honours the ECE echo with its own beta.
func TestCubicECNReduces(t *testing.T) {
	c := newConn(Config{Flow: 1, Variant: Cubic, ECN: true})
	marking := false
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && marking {
			p.Flags |= packet.FlagCE
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(400 * units.Millisecond))
	before := c.snd.Cwnd()
	marking = true
	c.sched.Run(units.Time(430 * units.Millisecond))
	marking = false
	c.sched.Run(units.Time(460 * units.Millisecond))
	st := c.snd.Stats()
	if st.ECNReductions != 1 {
		t.Errorf("ECNReductions = %d, want 1 (one per RTT)", st.ECNReductions)
	}
	after := c.snd.Cwnd()
	if after > before*0.85 || after < before*0.5 {
		t.Errorf("cwnd %v -> %v, want reduced to ~beta (0.7)", before, after)
	}
	if st.Retransmits != 0 {
		t.Errorf("ECN reduction retransmitted %d segments", st.Retransmits)
	}
}

// TestBBRIsRateDriven: a BBR sender paces from its model without
// Config.Paced, and its pacing intervals must be positive and finite.
func TestBBRIsRateDriven(t *testing.T) {
	c := newConn(Config{Flow: 1, Variant: BBR, TotalSegments: 400})
	if !c.snd.CC().RateDriven() {
		t.Fatal("BBR controller does not report RateDriven")
	}
	var lastSend units.Time
	backToBack := 0
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() {
			if now := c.sched.Now(); now == lastSend {
				backToBack++
			} else {
				lastSend = now
			}
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	if !c.snd.Finished() {
		t.Fatal("BBR flow did not finish")
	}
	// Before the first RTT sample there is no pacing basis, so the
	// initial window (BBR's floor of 4) bursts at t=0; after that every
	// send is spread out.
	if backToBack > int(bbrMinCwnd) {
		t.Errorf("%d same-instant sends, want pacing after the first window", backToBack)
	}
}

// TestBBRCyclesPhases: on a lossless path the controller must leave
// STARTUP once the delivery rate stops growing, DRAIN, and then cycle
// PROBE_BW; with a 10s min-RTT window and a long enough run it must
// also dip into PROBE_RTT.
func TestBBRCyclesPhases(t *testing.T) {
	// The pipe has no bottleneck, so MaxWindow is what makes the
	// delivery rate plateau and STARTUP exit.
	c := newConn(Config{Flow: 1, Variant: BBR, MaxWindow: 64})
	c.snd.Start()
	c.sched.Run(units.Time(15 * units.Second))
	cc := c.snd.cc.(*bbrCC)
	if cc.mode == bbrStartup {
		t.Error("still in STARTUP after 15s on a steady path")
	}
	if cc.bwCount == 0 || cc.btlBw() <= 0 {
		t.Errorf("no bandwidth samples in the filter (count %d)", cc.bwCount)
	}
	if !cc.haveMinRTT {
		t.Error("no min-RTT estimate")
	}
	if cc.rounds == 0 {
		t.Error("round counting never advanced")
	}
}

// TestBBRLossDoesNotCollapseWindow: a single loss triggers retransmission
// but must not multiplicatively decrease the model-derived window — loss
// is not a congestion signal to BBRv1.
func TestBBRLossDoesNotCollapseWindow(t *testing.T) {
	dropSeq, dropped := int64(50), false
	var before float64
	c := newConn(Config{Flow: 1, Variant: BBR, MaxWindow: 64})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == dropSeq && !dropped {
			dropped = true
			before = c.snd.Cwnd()
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(4 * units.Second))
	if !dropped {
		t.Fatal("drop never triggered")
	}
	st := c.snd.Stats()
	if st.FastRecoveries != 1 {
		t.Errorf("FastRecoveries = %d, want 1 (loss must still be repaired)", st.FastRecoveries)
	}
	if got := c.snd.Cwnd(); got < before*0.75 {
		t.Errorf("cwnd %v -> %v after loss; BBR must not cut multiplicatively", before, got)
	}
}

// TestBBRIgnoresECE: BBRv1 does not react to ECN marks.
func TestBBRIgnoresECE(t *testing.T) {
	c := newConn(Config{Flow: 1, Variant: BBR, ECN: true, TotalSegments: 200})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() {
			p.Flags |= packet.FlagCE
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	if st := c.snd.Stats(); st.ECNReductions != 0 {
		t.Errorf("BBR recorded %d ECN reductions, want 0", st.ECNReductions)
	}
	if !c.snd.Finished() {
		t.Error("flow did not finish under continuous marking")
	}
}

// TestModernVariantsCompleteUnderRandomLoss: both new controllers must
// survive a lossy path end to end — recovery mechanics, RTO fallback and
// completion bookkeeping all engaged.
func TestModernVariantsCompleteUnderRandomLoss(t *testing.T) {
	for _, v := range []Variant{Cubic, BBR} {
		t.Run(v.String(), func(t *testing.T) {
			c := newConn(Config{Flow: 1, Variant: v, TotalSegments: 300})
			n := 0
			c.fwd.drop = func(p *packet.Packet) bool {
				if p.IsAck() {
					return false
				}
				n++
				return n%29 == 0 // deterministic ~3.4% loss
			}
			c.snd.Start()
			c.sched.Run(units.Time(120 * units.Second))
			if !c.snd.Finished() {
				t.Fatalf("%v did not finish under loss: %+v", v, c.snd.Stats())
			}
			if c.rcv.ReceivedSegments != 300 {
				t.Errorf("receiver got %d segments, want 300", c.rcv.ReceivedSegments)
			}
		})
	}
}
