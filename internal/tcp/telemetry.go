package tcp

import (
	"bufsim/internal/metrics"
	"bufsim/internal/units"
)

// cwndBuckets spans 1 to 2^19 segments in doubling steps — any window a
// simulated sender can reach.
var cwndBuckets = metrics.ExpBuckets(1, 2, 20)

// Telemetry aggregates per-flow sender counters into a metrics registry:
// segments sent, retransmits, timeouts, fast recoveries, ACK and duplicate
// ACK counts, ECN reductions, flow counts per congestion-control variant,
// and a histogram of congestion-window samples (one observation per window
// update, via the sender's OnStateChange hook).
//
// Construction with a nil registry returns nil, and every method is safe
// on a nil receiver, so callers track senders unconditionally and pay one
// nil check when metrics are disabled. Counter aggregation happens in a
// snapshot-time collector; only the cwnd observation rides the hot path,
// and only when telemetry is enabled.
type Telemetry struct {
	senders []*Sender
	cwnd    *metrics.Histogram

	segments, retransmits, timeouts, recoveries *metrics.Counter
	acks, dupAcks, ecnReductions                *metrics.Counter
	flows                                       *metrics.Counter
	byVariant                                   map[Variant]*metrics.Counter
	reg                                         *metrics.Registry
}

// NewTelemetry returns a sender aggregator publishing into reg, or nil if
// reg is nil.
func NewTelemetry(reg *metrics.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	t := &Telemetry{
		cwnd:          reg.Histogram("tcp.cwnd_segments", cwndBuckets),
		segments:      reg.Counter("tcp.segments_sent"),
		retransmits:   reg.Counter("tcp.retransmits"),
		timeouts:      reg.Counter("tcp.timeouts"),
		recoveries:    reg.Counter("tcp.fast_recoveries"),
		acks:          reg.Counter("tcp.acks_received"),
		dupAcks:       reg.Counter("tcp.dup_acks_received"),
		ecnReductions: reg.Counter("tcp.ecn_reductions"),
		flows:         reg.Counter("tcp.flows_tracked"),
		byVariant:     map[Variant]*metrics.Counter{},
		reg:           reg,
	}
	reg.OnCollect(t.collect)
	return t
}

// Track adds a sender to the aggregate and samples its congestion window
// on every window update. Chains with any OnStateChange hook already set.
func (t *Telemetry) Track(s *Sender) {
	if t == nil || s == nil {
		return
	}
	t.senders = append(t.senders, s)
	v := s.cfg.Variant
	c, ok := t.byVariant[v]
	if !ok {
		c = t.reg.Counter("tcp.flows." + v.String())
		t.byVariant[v] = c
	}
	c.Inc()
	prev := s.OnStateChange
	hist := t.cwnd
	s.OnStateChange = func(now units.Time) {
		hist.Observe(s.Cwnd())
		if prev != nil {
			prev(now)
		}
	}
}

func (t *Telemetry) collect() {
	var sum Stats
	for _, s := range t.senders {
		st := s.Stats()
		sum.SegmentsSent += st.SegmentsSent
		sum.Retransmits += st.Retransmits
		sum.Timeouts += st.Timeouts
		sum.FastRecoveries += st.FastRecoveries
		sum.AcksReceived += st.AcksReceived
		sum.DupAcksReceived += st.DupAcksReceived
		sum.ECNReductions += st.ECNReductions
	}
	t.segments.Set(sum.SegmentsSent)
	t.retransmits.Set(sum.Retransmits)
	t.timeouts.Set(sum.Timeouts)
	t.recoveries.Set(sum.FastRecoveries)
	t.acks.Set(sum.AcksReceived)
	t.dupAcks.Set(sum.DupAcksReceived)
	t.ecnReductions.Set(sum.ECNReductions)
	t.flows.Set(int64(len(t.senders)))
}
