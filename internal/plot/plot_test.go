package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func renderToString(t *testing.T, c *Chart) string {
	t.Helper()
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRenderWellFormedSVG(t *testing.T) {
	c := &Chart{Title: "sawtooth", XLabel: "t (s)", YLabel: "W (pkts)"}
	c.Add("cwnd", Line, []float64{0, 1, 2, 3}, []float64{125, 190, 250, 130})
	c.Add("queue", LinePoints, []float64{0, 1, 2, 3}, []float64{0, 60, 125, 5})
	out := renderToString(t, c)
	// The output must be one well-formed XML document.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "circle", "sawtooth", "cwnd", "queue", "W (pkts)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRenderEscapesLabels(t *testing.T) {
	c := &Chart{Title: "a < b & c"}
	c.Add("s<1>", Line, []float64{0, 1}, []float64{0, 1})
	out := renderToString(t, c)
	if strings.Contains(out, "a < b & c") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "a &lt; b &amp; c") {
		t.Error("escaped title missing")
	}
}

func TestRenderLogAxes(t *testing.T) {
	c := &Chart{XLog: true, YLog: true}
	c.Add("curve", LinePoints, []float64{1, 10, 100, 1000}, []float64{5, 50, 500, 5000})
	out := renderToString(t, c)
	if !strings.Contains(out, "polyline") {
		t.Error("no polyline")
	}
	// Log-spaced points must land equally spaced horizontally: extract is
	// overkill; just ensure render didn't error and produced circles.
	if strings.Count(out, "<circle") != 4 {
		t.Errorf("want 4 circles, got %d", strings.Count(out, "<circle"))
	}
}

func TestRenderErrors(t *testing.T) {
	empty := &Chart{}
	if err := empty.Render(&strings.Builder{}); err == nil {
		t.Error("empty chart rendered")
	}
	bad := &Chart{YLog: true}
	bad.Add("neg", Line, []float64{1, 2}, []float64{-1, 1})
	if err := bad.Render(&strings.Builder{}); err == nil {
		t.Error("negative value on log axis rendered")
	}
	nan := &Chart{}
	nan.Add("nan", Line, []float64{1, 2}, []float64{math.NaN(), 1})
	if err := nan.Render(&strings.Builder{}); err == nil {
		t.Error("NaN rendered")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched series did not panic")
		}
	}()
	(&Chart{}).Add("bad", Line, []float64{1}, []float64{1, 2})
}

func TestTicksNice(t *testing.T) {
	ts := ticks(0, 100, false)
	if len(ts) < 3 || len(ts) > 12 {
		t.Errorf("ticks(0,100) = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	lts := ticks(1, 1000, true)
	want := []float64{1, 10, 100, 1000}
	if len(lts) != 4 {
		t.Fatalf("log ticks = %v, want %v", lts, want)
	}
	for i := range want {
		if math.Abs(lts[i]-want[i]) > 1e-9 {
			t.Fatalf("log ticks = %v", lts)
		}
	}
	// Sub-decade log range falls back to linear.
	if got := ticks(2, 5, true); len(got) < 2 {
		t.Errorf("sub-decade log ticks = %v", got)
	}
}

func TestTickLabel(t *testing.T) {
	cases := map[float64]string{
		0.5:     "0.5",
		100:     "100",
		20000:   "20k",
		3500000: "3.5M",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Errorf("tickLabel(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestConstantSeriesRange(t *testing.T) {
	c := &Chart{}
	c.Add("flat", Line, []float64{0, 1, 2}, []float64{7, 7, 7})
	out := renderToString(t, c)
	if !strings.Contains(out, "polyline") {
		t.Error("flat series failed to render")
	}
}
