// Package plot renders simple, dependency-free SVG line and scatter
// charts. It exists so cmd/paperexp can emit the paper's figures as
// actual image files, not just CSV: a cwnd sawtooth, a histogram against
// its normal fit, the min-buffer-vs-n curve.
//
// The feature set is deliberately small: linear or log axes with "nice"
// ticks, multiple named series (lines or points), a legend, and labels.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette holds the series colours, chosen for contrast on white.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Style selects how a series is drawn.
type Style int

// Series styles.
const (
	Line Style = iota
	Points
	LinePoints
)

type series struct {
	name   string
	xs, ys []float64
	style  Style
}

// Chart is a single plot. Configure the exported fields, add series, then
// Render.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height default to 640x420.
	Width, Height int
	// XLog / YLog select logarithmic axes; values must be positive.
	XLog, YLog bool

	series []series
}

// Add appends a named series with the given style. Lengths must match and
// be nonzero.
func (c *Chart) Add(name string, style Style, xs, ys []float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic(fmt.Sprintf("plot: series %q has %d xs and %d ys", name, len(xs), len(ys)))
	}
	c.series = append(c.series, series{name: name, xs: xs, ys: ys, style: style})
}

// Render writes the chart as a standalone SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 420
	}
	const (
		left, right, top, bottom = 70, 20, 36, 52
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	xmin, xmax, err := c.rangeOf(true)
	if err != nil {
		return err
	}
	ymin, ymax, err := c.rangeOf(false)
	if err != nil {
		return err
	}

	sx := func(x float64) float64 {
		return float64(left) + plotW*frac(x, xmin, xmax, c.XLog)
	}
	sy := func(y float64) float64 {
		return float64(top) + plotH*(1-frac(y, ymin, ymax, c.YLog))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			width/2, escape(c.Title))
	}

	// Axes box.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		left, top, plotW, plotH)

	// Ticks and grid.
	for _, t := range ticks(xmin, xmax, c.XLog) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, top, x, float64(top)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, float64(top)+plotH+16, tickLabel(t))
	}
	for _, t := range ticks(ymin, ymax, c.YLog) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			left, y, float64(left)+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			left-6, y+4, tickLabel(t))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			left+int(plotW)/2, height-12, escape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			top+int(plotH)/2, top+int(plotH)/2, escape(c.YLabel))
	}

	// Series.
	for i, s := range c.series {
		color := palette[i%len(palette)]
		if s.style == Line || s.style == LinePoints {
			var pts []string
			for j := range s.xs {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.xs[j]), sy(s.ys[j])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		if s.style == Points || s.style == LinePoints {
			for j := range s.xs {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
					sx(s.xs[j]), sy(s.ys[j]), color)
			}
		}
		// Legend entry.
		lx := left + 12
		ly := top + 14 + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly+4, escape(s.name))
	}
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// rangeOf computes the data range across series for one axis.
func (c *Chart) rangeOf(xAxis bool) (lo, hi float64, err error) {
	lo, hi = math.Inf(1), math.Inf(-1)
	log := c.YLog
	if xAxis {
		log = c.XLog
	}
	for _, s := range c.series {
		vals := s.ys
		if xAxis {
			vals = s.xs
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("plot: series %q contains non-finite values", s.name)
			}
			if log && v <= 0 {
				return 0, 0, fmt.Errorf("plot: series %q has non-positive value %v on a log axis", s.name, v)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo == hi {
		if log {
			lo, hi = lo/2, hi*2
		} else {
			lo, hi = lo-1, hi+1
		}
	}
	return lo, hi, nil
}

// frac maps v into [0,1] within [lo,hi], linearly or logarithmically.
func frac(v, lo, hi float64, log bool) float64 {
	if log {
		return (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
	}
	return (v - lo) / (hi - lo)
}

// ticks returns 4-8 "nice" tick positions covering [lo, hi].
func ticks(lo, hi float64, log bool) []float64 {
	if log {
		var out []float64
		for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
			t := math.Pow(10, e)
			if t >= lo/1.001 && t <= hi*1.001 {
				out = append(out, t)
			}
		}
		if len(out) >= 2 {
			return out
		}
		// Fewer than two decades: fall back to linear ticks.
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	switch {
	case span/step > 8:
		step *= 2
	case span/step < 3:
		step /= 2
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi*1.0001; t += step {
		out = append(out, t)
	}
	return out
}

// tickLabel formats a tick value compactly.
func tickLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
