// Command bufsearch empirically finds the minimum buffer that meets a
// utilization target for a given link and flow count, by bisecting over
// packet-level simulations, and compares the answer against the paper's
// rules.
//
//	bufsearch -rate 155Mbps -rtt 100ms -flows 300 -target 0.995
//
// -variant selects the congestion control the searched flows run
// (reno, tahoe, newreno, sack, cubic, bbr). -compare-cc instead sweeps
// every registered family at once and reports each one's minimum buffer
// against the sqrt rule — the updated-buffer-sizing-theory comparison;
// in that mode -target is the fraction of each family's own attainable
// utilization (rate-based controllers never reach an absolute 98%).
//
//	bufsearch -rate 155Mbps -flows 100,300 -compare-cc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"bufsim/internal/experiment"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bufsearch: ")

	var (
		rateStr   = flag.String("rate", "155Mbps", "bottleneck capacity C")
		rttStr    = flag.String("rtt", "100ms", "mean two-way propagation delay")
		spreadStr = flag.String("rtt-spread", "40ms", "RTT heterogeneity across flows")
		flowsStr  = flag.String("flows", "300", "number of long-lived TCP flows (comma-separated list with -compare-cc)")
		target    = flag.Float64("target", 0.98, "utilization target in (0,1); with -compare-cc, relative to each family's ceiling")
		varStr    = flag.String("variant", "reno", "congestion control variant ("+strings.Join(tcp.VariantNames(), ", ")+")")
		compareCC = flag.Bool("compare-cc", false, "compare the min buffer of every CC family against the sqrt rule")
		segment   = flag.Int("segment", int(units.DefaultSegment), "segment size in bytes")
		seed      = flag.Int64("seed", 1, "simulation seed")
		warmStr   = flag.String("warmup", "15s", "simulated warmup to discard")
		measStr   = flag.String("measure", "30s", "simulated measurement window")
		replicas  = flag.Int("replicas", 0, "confirm the found minimum across this many extra seeds")
		par       = flag.Int("parallel", 0, "max confirmation runs in flight (0: all CPUs)")
	)
	flag.Parse()

	rate, err := units.ParseBitRate(*rateStr)
	if err != nil {
		log.Fatal(err)
	}
	rtt, err := units.ParseDuration(*rttStr)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := units.ParseDuration(*spreadStr)
	if err != nil {
		log.Fatal(err)
	}
	warmup, err := units.ParseDuration(*warmStr)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := units.ParseDuration(*measStr)
	if err != nil {
		log.Fatal(err)
	}
	if *target <= 0 || *target >= 1 {
		log.Fatal("-target must be in (0,1)")
	}
	variant, err := tcp.ParseVariant(*varStr)
	if err != nil {
		log.Fatal(err)
	}
	var flowCounts []int
	for _, s := range strings.Split(*flowsStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			log.Fatalf("-flows: %q is not a positive flow count", s)
		}
		flowCounts = append(flowCounts, n)
	}

	if *compareCC {
		table := experiment.RunCCFamily(experiment.CCFamilyConfig{
			Seed:           *seed,
			Ns:             flowCounts,
			BottleneckRate: rate,
			RTTMin:         rtt - spread/2,
			RTTMax:         rtt + spread/2,
			SegmentSize:    units.ByteSize(*segment),
			Target:         *target,
			Warmup:         warmup,
			Measure:        measure,
			Parallelism:    *par,
		})
		fmt.Printf("min buffer per CC family at %.0f%% of each family's ceiling: %v, RTT %v\n",
			100**target, rate, rtt)
		if err := experiment.Render(os.Stdout, table); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(flowCounts) != 1 {
		log.Fatal("-flows takes a single count unless -compare-cc is set")
	}
	flows := &flowCounts[0]

	bdp := units.PacketsInFlight(rate, rtt, units.ByteSize(*segment))
	sqrtRule := experiment.SqrtRuleBuffer(float64(bdp), *flows)
	cfg := experiment.LongLivedConfig{
		Seed:           *seed,
		N:              *flows,
		BottleneckRate: rate,
		RTTMin:         rtt - spread/2,
		RTTMax:         rtt + spread/2,
		SegmentSize:    units.ByteSize(*segment),
		Warmup:         warmup,
		Measure:        measure,
		Variant:        variant,
		Parallelism:    *par,
	}

	fmt.Printf("searching min buffer for %.1f%% utilization: %v, RTT %v, %d %v flows\n",
		100**target, rate, rtt, *flows, variant)
	fmt.Printf("rule of thumb %d pkts; RTTxC/sqrt(n) %d pkts\n", bdp, sqrtRule)
	fmt.Printf("each probe simulates %v (+%v warmup)...\n", measure, warmup)

	hi := 2 * bdp
	min := experiment.MinBufferForUtilization(cfg, *target, hi)
	util := experiment.MeasuredUtilization(cfg, min)

	fmt.Printf("\nminimum buffer: %d packets (%.2fx the sqrt rule, %.1f%% of rule of thumb)\n",
		min, float64(min)/float64(sqrtRule), 100*float64(min)/float64(bdp))
	fmt.Printf("utilization at minimum: %.2f%%\n", 100*util)
	if min == hi {
		fmt.Println("warning: target not reached within 2x rule-of-thumb; reporting the bound")
	}

	if *replicas > 1 {
		confirm := cfg
		confirm.BufferPackets = min
		rep := experiment.RunLongLivedReplicated(confirm, *replicas)
		fmt.Printf("across %d seeds: utilization %.2f%% +- %.2f%% (min %.2f%%, max %.2f%%)\n",
			rep.Replicas, 100*rep.MeanUtilization, 100*rep.StdDev, 100*rep.Min, 100*rep.Max)
	}
}
