package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the buflint binary into dir and returns its path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "buflint")
	cmd := exec.Command("go", "build", "-o", bin, "bufsim/cmd/buflint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building buflint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/buflint -> repo root
}

// writeModule materializes a synthetic module. Its module path must be
// "bufsim" so the analyzers' AppliesTo scopes treat it as the simulator.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtySource = `package bufsim

import (
	"fmt"
	"time"
)

// Spray leaks wall-clock time into the deterministic core and prints a
// map in iteration order: one finding for each analyzer under test.
func Spray(m map[string]int) {
	start := time.Now()
	for k, v := range m {
		fmt.Println(k, v, start)
	}
}
`

const cleanSource = `package bufsim

import (
	"fmt"
	"sort"
)

// Spray prints a map in sorted key order.
func Spray(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`

// TestStandaloneDirtyModule runs the assembled tool in standalone mode
// over a module with exactly two planted violations and asserts the exit
// status and diagnostic count the CI gate relies on.
func TestStandaloneDirtyModule(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": dirtySource,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code = %d, want 2\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "buflint: 2 finding(s)") {
		t.Errorf("want exactly 2 findings, got:\n%s", text)
	}
	if !strings.Contains(text, "wall-clock time.Now") {
		t.Errorf("missing simdeterminism diagnostic:\n%s", text)
	}
	if !strings.Contains(text, "fmt.Println inside range over a map") {
		t.Errorf("missing maporder diagnostic:\n%s", text)
	}
}

// TestStandaloneCleanModule: no findings, exit 0, silence.
func TestStandaloneCleanModule(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": cleanSource,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("clean module: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("clean module produced output:\n%s", out)
	}
}

// TestSuppressionSilencesFinding: a //lint:ignore with a reason silences
// exactly the named analyzer at that site.
func TestSuppressionSilencesFinding(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod": "module bufsim\n\ngo 1.22\n",
		"tiny.go": `package bufsim

import "time"

// Stamp is telemetry-only by design.
func Stamp() int64 {
	//lint:ignore simdeterminism test fixture: telemetry only
	return time.Now().UnixNano()
}
`,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("suppressed module: %v\n%s", err, out)
	}
}

// TestVetToolProtocol drives the binary the way CI does — through
// `go vet -vettool` — so the unitchecker handshake (-V=full, -flags,
// per-package .cfg, export-data import) is exercised end to end.
func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": dirtySource,
	})

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a dirty module:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "wall-clock time.Now") ||
		!strings.Contains(text, "fmt.Println inside range over a map") {
		t.Errorf("go vet output missing expected diagnostics:\n%s", text)
	}

	// And the clean module passes under the same driver.
	clean := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": cleanSource,
	})
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = clean
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
