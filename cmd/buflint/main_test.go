package main_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles the buflint binary into dir and returns its path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "buflint")
	cmd := exec.Command("go", "build", "-o", bin, "bufsim/cmd/buflint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building buflint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/buflint -> repo root
}

// writeModule materializes a synthetic module. Its module path must be
// "bufsim" so the analyzers' AppliesTo scopes treat it as the simulator.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtySource = `package bufsim

import (
	"fmt"
	"time"
)

// Spray leaks wall-clock time into the deterministic core and prints a
// map in iteration order: one finding for each analyzer under test.
func Spray(m map[string]int) {
	start := time.Now()
	for k, v := range m {
		fmt.Println(k, v, start)
	}
}
`

const cleanSource = `package bufsim

import (
	"fmt"
	"sort"
)

// Spray prints a map in sorted key order.
func Spray(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`

// TestStandaloneDirtyModule runs the assembled tool in standalone mode
// over a module with exactly two planted violations and asserts the exit
// status and diagnostic count the CI gate relies on.
func TestStandaloneDirtyModule(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": dirtySource,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code = %d, want 2\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "buflint: 2 finding(s)") {
		t.Errorf("want exactly 2 findings, got:\n%s", text)
	}
	if !strings.Contains(text, "wall-clock time.Now") {
		t.Errorf("missing simdeterminism diagnostic:\n%s", text)
	}
	if !strings.Contains(text, "fmt.Println inside range over a map") {
		t.Errorf("missing maporder diagnostic:\n%s", text)
	}
}

// TestStandaloneCleanModule: no findings, exit 0, silence.
func TestStandaloneCleanModule(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": cleanSource,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("clean module: %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Errorf("clean module produced output:\n%s", out)
	}
}

// TestSuppressionSilencesFinding: a //lint:ignore with a reason silences
// exactly the named analyzer at that site.
func TestSuppressionSilencesFinding(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod": "module bufsim\n\ngo 1.22\n",
		"tiny.go": `package bufsim

import "time"

// Stamp is telemetry-only by design.
func Stamp() int64 {
	//lint:ignore simdeterminism test fixture: telemetry only
	return time.Now().UnixNano()
}
`,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("suppressed module: %v\n%s", err, out)
	}
}

// TestVetToolProtocol drives the binary the way CI does — through
// `go vet -vettool` — so the unitchecker handshake (-V=full, -flags,
// per-package .cfg, export-data import) is exercised end to end.
func TestVetToolProtocol(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": dirtySource,
	})

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed over a dirty module:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "wall-clock time.Now") ||
		!strings.Contains(text, "fmt.Println inside range over a map") {
		t.Errorf("go vet output missing expected diagnostics:\n%s", text)
	}

	// And the clean module passes under the same driver.
	clean := writeModule(t, map[string]string{
		"go.mod":  "module bufsim\n\ngo 1.22\n",
		"tiny.go": cleanSource,
	})
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = clean
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

// stubSim is a miniature bufsim/internal/sim for synthetic modules: the
// new analyzers match types by package-path suffix and name, so a stub
// with the right shapes exercises them without the real kernel.
const stubSim = `package sim

type Event struct{ id int32 }

type Target struct{ shard int32 }

type Actor interface{ OnEvent(op int32, arg any) }

type Scheduler struct{ shards int }

func (s *Scheduler) EnableShards(n int, lookahead int64)                     { s.shards = n }
func (s *Scheduler) ShardView(k int) *Scheduler                              { return s }
func (s *Scheduler) ShardCount() int                                         { return s.shards }
func (s *Scheduler) TargetFor(a Actor) Target                                { return Target{} }
func (s *Scheduler) PostAfter(d int64, a Actor, op int32, arg any) Event     { return Event{} }
func (s *Scheduler) PostToAfter(d int64, tg Target, op int32, arg any) Event { return Event{} }
func (s *Scheduler) Cancel(e Event)                                          {}

type RNG struct{ state uint64 }

func NewRNG(seed int64) *RNG    { return &RNG{state: uint64(seed)} }
func (g *RNG) Fork() *RNG       { return &RNG{state: g.state*6364136223846793005 + 1} }
func (g *RNG) Float64() float64 { return float64(g.state) }
`

// shardViolations plants one shardownership and one rngconfinement
// finding in a shard-aware package (so shardsafety stays quiet).
const shardViolations = `package topology

import "bufsim/internal/sim"

type probe struct{ hits int }

func (p *probe) OnEvent(op int32, arg any) {}

// DoubleBind schedules one probe through two shard views.
func DoubleBind(s *sim.Scheduler, p *probe) {
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	v0.PostAfter(5, p, 1, nil)
	v1.PostAfter(5, p, 1, nil)
}

// ShardCountDraw draws only in sharded runs.
func ShardCountDraw(s *sim.Scheduler, g *sim.RNG) float64 {
	if s.ShardCount() > 1 {
		return g.Float64()
	}
	return 0
}
`

// slabViolations plants one slabescape finding in internal/tcp.
const slabViolations = `package tcp

type Slab struct {
	cwnd []float64
}

func (sl *Slab) addRow() int32 {
	sl.cwnd = append(sl.cwnd, 0)
	return int32(len(sl.cwnd) - 1)
}

// Stale holds an element pointer across growth.
func Stale(sl *Slab) float64 {
	p := &sl.cwnd[0]
	sl.addRow()
	return *p
}
`

func writeV2Module(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod":                   "module bufsim\n\ngo 1.22\n",
		"internal/sim/sim.go":      stubSim,
		"internal/topology/cut.go": shardViolations,
		"internal/tcp/slab.go":     slabViolations,
	})
}

// TestStandaloneDataflowAnalyzers plants exactly one violation for each
// of the dataflow analyzers (shardownership, rngconfinement,
// slabescape) in a synthetic module and asserts the exit status and the
// three diagnostics.
func TestStandaloneDataflowAnalyzers(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeV2Module(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code = %d, want 2\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "buflint: 3 finding(s)") {
		t.Errorf("want exactly 3 findings, got:\n%s", text)
	}
	for _, want := range []string{
		"p crosses shard views: bound to ShardView(0), now scheduled through ShardView(1)",
		"RNG draw g.Float64 is control-dependent on the shard count (ShardCount)",
		"p aliases a tcp.Slab column and is used after a call that can reach addRow",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, text)
		}
	}
}

// TestStandaloneJSON checks the -json report: every finding carries a
// 16-hex-digit fingerprint and the timing block names all nine
// analyzers, so the CI budget is observable.
func TestStandaloneJSON(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeV2Module(t)

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = mod
	out, err := cmd.Output() // stdout only; exit 2 is expected
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2, got %v", err)
	}
	var report struct {
		Findings []struct {
			Posn        string `json:"posn"`
			Analyzer    string `json:"analyzer"`
			Message     string `json:"message"`
			Fingerprint string `json:"fingerprint"`
		} `json:"findings"`
		Timings []struct {
			Analyzer string  `json:"analyzer"`
			Millis   float64 `json:"ms"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, out)
	}
	if len(report.Findings) != 3 {
		t.Fatalf("findings = %d, want 3\n%s", len(report.Findings), out)
	}
	fp := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for _, f := range report.Findings {
		if !fp.MatchString(f.Fingerprint) {
			t.Errorf("finding %q has malformed fingerprint %q", f.Message, f.Fingerprint)
		}
		if seen[f.Fingerprint] {
			t.Errorf("duplicate fingerprint %s", f.Fingerprint)
		}
		seen[f.Fingerprint] = true
	}
	timed := map[string]bool{}
	for _, tm := range report.Timings {
		if tm.Millis < 0 {
			t.Errorf("analyzer %s has negative timing %v", tm.Analyzer, tm.Millis)
		}
		timed[tm.Analyzer] = true
	}
	for _, name := range []string{
		"simdeterminism", "maporder", "unitsafety", "digestfield", "eventcapture",
		"shardsafety", "shardownership", "slabescape", "rngconfinement",
	} {
		if !timed[name] {
			t.Errorf("timings missing analyzer %s:\n%s", name, out)
		}
	}
}

// TestStaleSuppressionFails: a //lint:ignore whose finding no longer
// fires is itself reported, so dead suppressions cannot accumulate.
func TestStaleSuppressionFails(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	mod := writeModule(t, map[string]string{
		"go.mod": "module bufsim\n\ngo 1.22\n",
		"tiny.go": `package bufsim

// Stamp no longer reads the clock, but the directive lingers.
func Stamp() int64 {
	//lint:ignore simdeterminism leftover: the wall read below was removed
	return 42
}
`,
	})

	cmd := exec.Command(bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 for stale directive, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "stale //lint:ignore simdeterminism directive") {
		t.Errorf("missing lintstale diagnostic:\n%s", out)
	}
}
