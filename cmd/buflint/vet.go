package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"bufsim/internal/lint"
)

// vetConfig is the JSON configuration cmd/go writes for a vettool, one
// per package. Field set and semantics follow the unitchecker protocol
// (golang.org/x/tools/go/analysis/unitchecker), which cmd/go treats as
// the vettool ABI.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetMode executes one unitchecker-protocol invocation: parse the
// package named by cfgPath, type-check it against its dependencies'
// export data, run the analyzers, and report.
func runVetMode(cfgPath string, jsonOut bool) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("buflint: parsing %s: %v", cfgPath, err))
	}

	// Buflint defines no facts, but the protocol requires the vetx
	// output to exist so downstream packages can "import" it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency visited only for facts; nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := mappedImporter{m: cfg.ImportMap, imp: compilerImporter}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(fmt.Errorf("buflint: typecheck %s: %v", cfg.ImportPath, err))
	}

	findings, err := lint.RunAnalyzers(fset, files, pkg, info, cfg.ImportPath, lint.Analyzers())
	if err != nil {
		fatal(err)
	}
	if len(findings) == 0 {
		return
	}
	if jsonOut {
		emitJSON(cfg.ImportPath, findings)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Position, f.Message)
	}
	os.Exit(2)
}

type mappedImporter struct {
	m   map[string]string
	imp types.Importer
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return mi.imp.Import(path)
}

// emitJSON mirrors unitchecker's -json shape:
// {"pkgpath": {"analyzer": [{posn, message}, ...]}}, extended with each
// finding's stable fingerprint. go vet merges these blobs across
// packages; JSON mode reports and exits 0.
func emitJSON(pkgPath string, findings []lint.Finding) {
	type jsonDiag struct {
		Posn        string `json:"posn"`
		Message     string `json:"message"`
		Fingerprint string `json:"fingerprint,omitempty"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{
			Posn:        f.Position.String(),
			Message:     f.Message,
			Fingerprint: f.Fingerprint,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
