// Buflint is the simulator's vettool: it assembles the internal/lint
// analyzers (simdeterminism, maporder, unitsafety, digestfield,
// eventcapture, shardsafety, shardownership, slabescape,
// rngconfinement) into a binary that speaks the `go vet -vettool`
// unitchecker protocol, built entirely on the standard library.
//
// Usage:
//
//	go build -o bin/buflint ./cmd/buflint
//	go vet -vettool=$(pwd)/bin/buflint ./...
//
// or standalone, without the go tool driving it:
//
//	go run ./cmd/buflint ./...
//
// In vettool mode go vet hands buflint one JSON config per package
// (naming the source files and the export data of every dependency);
// buflint type-checks from that and reports findings in the standard
// file:line:col form, exiting 2 when there are any. In standalone mode
// buflint loads packages itself from source, which needs no build cache
// but re-type-checks dependencies on every run. Standalone -json emits
// one object with every finding (position, analyzer, message, stable
// fingerprint) plus per-analyzer wall-time so the blocking CI lint
// job's budget is observable.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on, or immediately above, the offending line. A directive whose
// finding no longer fires is itself an error (lintstale): the
// suppression count can only shrink.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"bufsim/internal/lint"
)

// version keys go vet's action cache: bump it whenever any analyzer's
// behavior changes so cached "clean" verdicts are invalidated. v2 is the
// dataflow engine: flow-aware simdeterminism, shardownership,
// slabescape, rngconfinement, fingerprints and stale-suppression
// checking.
const version = "buflint version v2.0.0"

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			// The output is part of go vet's action cache key; bump the
			// version string whenever an analyzer's behavior changes so
			// cached "clean" verdicts are invalidated.
			fmt.Println(version)
			return
		case a == "-flags" || a == "--flags":
			// Flags we accept from `go vet -<flag>`.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics"}]`)
			return
		}
	}

	jsonOut := false
	var rest []string
	for _, a := range args {
		switch a {
		case "-json", "--json", "-json=true", "--json=true":
			jsonOut = true
		case "-json=false", "--json=false":
		default:
			rest = append(rest, a)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		runVetMode(rest[0], jsonOut)
		return
	}
	runStandalone(rest, jsonOut)
}

// runStandalone loads packages from source and prints findings; with
// -json it emits findings (with fingerprints) and per-analyzer timings
// as one JSON object on stdout. Exit status 2 signals findings in both
// forms.
func runStandalone(patterns []string, jsonOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings, timings, err := lint.RunTimed(mod, patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if jsonOut {
		emitStandaloneJSON(findings, timings)
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "buflint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// emitStandaloneJSON writes the standalone report: every finding with
// its stable fingerprint, plus each analyzer's aggregate wall time.
func emitStandaloneJSON(findings []lint.Finding, timings []lint.AnalyzerTiming) {
	type jsonFinding struct {
		Posn        string `json:"posn"`
		Analyzer    string `json:"analyzer"`
		Message     string `json:"message"`
		Fingerprint string `json:"fingerprint"`
	}
	type jsonTiming struct {
		Analyzer string  `json:"analyzer"`
		Millis   float64 `json:"ms"`
	}
	out := struct {
		Findings []jsonFinding `json:"findings"`
		Timings  []jsonTiming  `json:"timings"`
	}{Findings: []jsonFinding{}}
	for _, f := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			Posn:        f.Position.String(),
			Analyzer:    f.Analyzer,
			Message:     f.Message,
			Fingerprint: f.Fingerprint,
		})
	}
	for _, t := range timings {
		out.Timings = append(out.Timings, jsonTiming{
			Analyzer: t.Analyzer,
			Millis:   float64(t.Elapsed.Microseconds()) / 1000,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
