// Buflint is the simulator's vettool: it assembles the internal/lint
// analyzers (simdeterminism, maporder, unitsafety, digestfield,
// eventcapture) into a binary that speaks the `go vet -vettool`
// unitchecker protocol, built entirely on the standard library.
//
// Usage:
//
//	go build -o bin/buflint ./cmd/buflint
//	go vet -vettool=$(pwd)/bin/buflint ./...
//
// or standalone, without the go tool driving it:
//
//	go run ./cmd/buflint ./...
//
// In vettool mode go vet hands buflint one JSON config per package
// (naming the source files and the export data of every dependency);
// buflint type-checks from that and reports findings in the standard
// file:line:col form, exiting 2 when there are any. In standalone mode
// buflint loads packages itself from source, which needs no build cache
// but re-type-checks dependencies on every run.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on, or immediately above, the offending line.
package main

import (
	"fmt"
	"os"
	"strings"

	"bufsim/internal/lint"
)

const version = "buflint version v1.0.0"

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V" || a == "--V":
			// The output is part of go vet's action cache key; bump the
			// version string whenever an analyzer's behavior changes so
			// cached "clean" verdicts are invalidated.
			fmt.Println(version)
			return
		case a == "-flags" || a == "--flags":
			// Flags we accept from `go vet -<flag>`.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics"}]`)
			return
		}
	}

	jsonOut := false
	var rest []string
	for _, a := range args {
		switch a {
		case "-json", "--json", "-json=true", "--json=true":
			jsonOut = true
		case "-json=false", "--json=false":
		default:
			rest = append(rest, a)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		runVetMode(rest[0], jsonOut)
		return
	}
	runStandalone(rest)
}

// runStandalone loads packages from source and prints findings.
func runStandalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.FindModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	findings, err := lint.Run(mod, patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "buflint: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}
