// Command paperexp regenerates the figures and tables of "Sizing Router
// Buffers" (SIGCOMM 2004). Each experiment id matches DESIGN.md's
// per-experiment index:
//
//	paperexp -exp fig2     single-flow sawtooth at B = RTT x C (also figs 3)
//	paperexp -exp fig4     underbuffered single flow
//	paperexp -exp fig5     overbuffered single flow
//	paperexp -exp fig6     aggregate-window distribution vs Gaussian
//	paperexp -exp fig7     min buffer vs n for utilization targets
//	paperexp -exp fig8     min buffer for short flows vs the M/G/1 model
//	paperexp -exp fig9     AFCT: RTTxC vs RTTxC/sqrt(n) buffers
//	paperexp -exp fig10    the Cisco-GSR utilization table (model vs sim)
//	paperexp -exp fig11    the production-mix table
//	paperexp -exp sync     synchronization vs flow count ablation
//	paperexp -exp red      fig10 under RED
//	paperexp -exp pareto   fig9 with bounded-Pareto flow sizes
//
// plus the extensions beyond the paper's own artifacts:
//
//	paperexp -exp pacing     paced vs ACK-clocked senders at tiny buffers
//	paperexp -exp smooth     slow access links vs the M/D/1 bound
//	paperexp -exp internet2  the §5.3 backbone at 0.5% of a 1s buffer
//	paperexp -exp multihop   per-link sqrt(n) rule on two bottlenecks
//	paperexp -exp variants   Reno / NewReno / SACK / Tahoe robustness
//	paperexp -exp ecn        RED marking vs dropping
//	paperexp -exp harpoon    closed-loop session traffic (§5.2 methodology)
//	paperexp -exp rttspread  RTT heterogeneity vs synchronization (§3)
//	paperexp -exp ccfamilies buffer requirement vs n per CC family
//	                         (CUBIC and BBR against the 2004 sqrt rule)
//	paperexp -exp flashcrowd buffer sizes vs a traffic surge: arrivals and
//	                         the long-lived population n(t) spike together
//	                         (-workload swaps in another profile shape)
//	paperexp -exp adversarial worst-case traffic vs the buffer ladder:
//	                         synchronized pulse trains, lockstep AIMD
//	                         cohorts and a loaded parking-lot chain
//	                         (-adversary restricts to one pattern)
//	paperexp -exp probe      black-box probe validation: estimate buffer
//	                         size and classify the drop discipline of
//	                         known queues, then score the answers
//	paperexp -exp all        everything above
//
// -quick shrinks every experiment (lower rates, fewer points, shorter
// windows) for a fast smoke run; full runs use the paper's parameters.
// -csv DIR writes the figure time series / curves as CSV files; -svg DIR
// renders the figures as SVG.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"bufsim/internal/adversary"
	"bufsim/internal/audit"
	"bufsim/internal/experiment"
	"bufsim/internal/metrics"
	"bufsim/internal/plot"
	"bufsim/internal/runcache"
	"bufsim/internal/trace"
	"bufsim/internal/units"
	"bufsim/internal/workload"
	"bufsim/internal/workload/profile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperexp: ")
	var (
		exp      = flag.String("exp", "all", "experiment id (fig2..fig11, sync, red, pareto, an extension such as variants, codel or ccfamilies — see the doc comment for the full list — or all)")
		quick    = flag.Bool("quick", false, "scaled-down parameters for a fast run")
		seed     = flag.Int64("seed", 1, "simulation seed")
		csvDir   = flag.String("csv", "", "directory to write CSV series into (optional)")
		svgDir   = flag.String("svg", "", "directory to write SVG figures into (optional)")
		metOut   = flag.String("metrics", "", "write run telemetry to this JSON file")
		cpuprof  = flag.String("pprof", "", "write a CPU profile to this file")
		par      = flag.Int("parallel", 0, "max simulations in flight per sweep (0: all CPUs); results are identical at any setting")
		shards   = flag.Int("shards", 0, "parallel event shards inside each simulation (0: sequential kernel); results are identical at any setting")
		auditOn  = flag.Bool("audit", false, "run every experiment under the conservation-law checker; violations are logged and the run exits nonzero")
		cacheOn  = flag.Bool("cache", false, "memoize per-point results in a content-addressed store; a re-run with identical parameters replays from disk")
		cacheDir = flag.String("cachedir", filepath.Join("results", "cache"), "directory for the -cache store")
		resume   = flag.Bool("resume", false, "continue an interrupted run from its checkpoint manifests (implies -cache)")
		verify   = flag.Bool("cache-verify", false, "recompute a sample of cache hits and fail on any digest mismatch (implies -cache)")
		wlArg    = flag.String("workload", "", "workload profile for the flashcrowd experiment: a preset name (see bufsim.ProfileNames) or a profile .json file")
		advArg   = flag.String("adversary", "", "restrict -exp adversarial to one pattern ("+strings.Join(adversary.PatternNames(), ", ")+"); default all")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	r := runner{quick: *quick, seed: *seed, csvDir: *csvDir, svgDir: *svgDir, parallel: *par, shards: *shards, workload: *wlArg, adversary: *advArg}
	if *resume || *verify {
		*cacheOn = true
	}
	if *cacheOn {
		store, err := runcache.Open(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		if *verify {
			store.SetVerifySample(verifySample)
		}
		r.cache = store
		r.resume = *resume
	}
	if *metOut != "" {
		r.metrics = metrics.New()
	}
	if *auditOn {
		// Log the first violations as they happen (the auditor itself also
		// stores a bounded sample); the summary below reports the total.
		var logged int64
		r.audit = audit.New(audit.OnViolation(func(v audit.Violation) {
			if logged < 20 {
				log.Printf("audit: %s", v)
			}
			logged++
		}))
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
			"fig11", "sync", "red", "pareto", "pacing", "smooth", "internet2",
			"multihop", "variants", "ecn", "harpoon", "rttspread", "codel",
			"ccfamilies", "flashcrowd", "adversarial", "probe"}
	}
	// The run manifest records which experiments of this exact invocation
	// have already printed their output, so -resume skips straight to the
	// first unfinished one.
	var man *runcache.RunManifest
	if r.cache != nil {
		runKey := runcache.Key("paperexp-run-v1", "run", struct {
			Ids   []string
			Quick bool
			Seed  int64
		}{ids, *quick, *seed})
		man = r.cache.Run(runKey, r.resume)
	}
	for _, id := range ids {
		if man.IsDone(id) {
			fmt.Printf("=== %s === (done in a previous run, skipped)\n\n", id)
			continue
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", id)
		if err := r.run(id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		man.MarkDone(id)
	}
	man.Finish()
	if r.cache != nil {
		s := r.cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%.0f%% hit rate), %d stored, %d verified\n",
			s.Hits, s.Misses, 100*s.HitRate(), s.Puts, s.Verified)
		if fails := r.cache.VerifyFailures(); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("cache-verify: %s point %s recomputed differently", f.Kind, f.Key[:12])
			}
			log.Fatalf("cache-verify: %d of %d sampled hits mismatched", len(fails), s.Verified)
		}
	}
	if r.metrics != nil {
		f, err := os.Create(*metOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.metrics.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *metOut)
	}
	if r.audit != nil {
		if n := r.audit.Count(); n > 0 {
			log.Fatalf("audit: %d invariant violation(s); first stored:\n%s", n, r.audit)
		}
		fmt.Println("audit: all invariants held")
	}
}

type runner struct {
	quick     bool
	seed      int64
	csvDir    string
	svgDir    string
	parallel  int    // worker bound for the sweeping experiments; 0 = all CPUs
	shards    int    // parallel event shards per simulation; 0 = sequential
	workload  string // -workload: profile preset name or .json path
	adversary string // -adversary: restrict the adversarial sweep to one pattern
	metrics   *metrics.Registry
	audit     *audit.Auditor  // nil unless -audit
	cache     *runcache.Store // nil unless -cache
	resume    bool
}

// verifySample is the fraction of cache hits -cache-verify recomputes.
const verifySample = 0.25

// child returns a fresh registry for one experiment's telemetry when
// -metrics was requested, else nil (telemetry disabled).
func (r runner) child() *metrics.Registry {
	if r.metrics == nil {
		return nil
	}
	return metrics.New()
}

// mergeMetrics folds one experiment's registry into the master dump under
// the experiment id.
func (r runner) mergeMetrics(id string, child *metrics.Registry) {
	if r.metrics != nil && child != nil {
		r.metrics.Merge(id, child)
	}
}

// writeSVG renders a chart into the svg directory, if one was requested.
func (r runner) writeSVG(name string, c *plot.Chart) error {
	if r.svgDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.svgDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(r.svgDir, name+".svg")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Render(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func (r runner) run(id string) error {
	switch id {
	case "fig2", "fig3":
		return r.singleFlow(1.0, "fig2_rule_of_thumb")
	case "fig4":
		return r.singleFlow(0.125, "fig4_underbuffered")
	case "fig5":
		return r.singleFlow(2.0, "fig5_overbuffered")
	case "fig6":
		return r.windowDist()
	case "fig7":
		return r.minBuffer()
	case "fig8":
		return r.shortFlows()
	case "fig9":
		return r.afct(workload.GeometricSize(14), "fig9")
	case "pareto":
		return r.afct(workload.ParetoSize{Shape: 1.2, Min: 2, Max: 2000}, "pareto")
	case "fig10":
		return r.table(false)
	case "red":
		return r.table(true)
	case "fig11":
		return r.production()
	case "sync":
		return r.sync()
	case "pacing":
		return r.pacing()
	case "internet2":
		return r.backbone()
	case "multihop":
		return r.multihop()
	case "variants":
		return r.variants()
	case "ecn":
		return r.ecn()
	case "harpoon":
		return r.harpoon()
	case "rttspread":
		return r.rttSpread()
	case "codel":
		return r.codel()
	case "ccfamilies":
		return r.ccFamilies()
	case "flashcrowd":
		return r.flashCrowd()
	case "adversarial":
		return r.adversarial()
	case "probe":
		return r.probeLadder()
	case "smooth":
		return r.smoothing()
	default:
		return fmt.Errorf("unknown experiment %q (see -help)", id)
	}
}

func (r runner) writeCSV(name string, series ...*trace.Series) error {
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(r.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, series...); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func (r runner) singleFlow(factor float64, name string) error {
	cfg := experiment.SingleFlowConfig{BufferFactor: factor, Metrics: r.child(), Audit: r.audit, Cache: r.cache, Shards: r.shards}
	if r.quick {
		cfg.Warmup, cfg.Measure = 60*units.Second, 60*units.Second
	}
	res := experiment.RunSingleFlow(cfg)
	r.mergeMetrics(name, cfg.Metrics)
	fmt.Printf("BDP %d pkts, buffer %d pkts (%.3gx)\n", res.BDPPackets, res.BufferPackets, factor)
	fmt.Printf("utilization %.2f%%, mean queue %.1f pkts, min queue seen %.0f pkts\n",
		100*res.Utilization, res.MeanQueue, res.MinQueueSeen)
	fmt.Println(trace.ASCIIPlot(res.Cwnd.Window(res.Cwnd.Times[0], res.Cwnd.Times[0]+60), 72, 10))
	fmt.Println(trace.ASCIIPlot(res.Queue.Window(res.Queue.Times[0], res.Queue.Times[0]+60), 72, 8))
	if err := r.writeCSV(name, res.Cwnd, res.Queue); err != nil {
		return err
	}
	cwnd := res.Cwnd.Window(res.Cwnd.Times[0], res.Cwnd.Times[0]+60).Downsample(1200)
	qp := res.Queue.Window(res.Queue.Times[0], res.Queue.Times[0]+60).Downsample(1200)
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Single flow, B = %.3gx RTTxC (util %.1f%%)", factor, 100*res.Utilization),
		XLabel: "time (s)", YLabel: "packets",
	}
	chart.Add("cwnd W(t)", plot.Line, cwnd.Times, cwnd.Values)
	chart.Add("queue Q(t)", plot.Line, qp.Times, qp.Values)
	return r.writeSVG(name, chart)
}

func (r runner) windowDist() error {
	cfg := experiment.WindowDistConfig{Seed: r.seed, N: 200, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.N = 80
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 30*units.Second
	}
	res := experiment.RunWindowDist(cfg)
	if err := experiment.Render(os.Stdout, res); err != nil {
		return err
	}
	hist := &trace.Series{Name: "density"}
	normal := &trace.Series{Name: "normal_fit"}
	for i := 0; i < res.Histogram.NumBins(); i++ {
		center, _ := res.Histogram.Bin(i)
		hist.Times = append(hist.Times, center)
		hist.Values = append(hist.Values, res.Histogram.Density(i))
		z := (center - res.Mean) / res.StdDev
		normal.Times = append(normal.Times, center)
		normal.Values = append(normal.Values, math.Exp(-z*z/2)/(res.StdDev*math.Sqrt(2*math.Pi)))
	}
	if err := r.writeCSV("fig6_window_distribution", hist, normal); err != nil {
		return err
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Aggregate window distribution, n=%d (KS %.3f)", res.N, res.KS),
		XLabel: "sum of congestion windows (packets)", YLabel: "probability density",
	}
	chart.Add("measured", plot.Line, hist.Times, hist.Values)
	chart.Add("normal fit", plot.Line, normal.Times, normal.Values)
	return r.writeSVG("fig6_window_distribution", chart)
}

func (r runner) minBuffer() error {
	cfg := experiment.MinBufferConfig{Seed: r.seed, Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Ns = []int{25, 50, 100, 200}
		cfg.Targets = []float64{0.98, 0.995}
		cfg.LadderPoints = 7
		cfg.Warmup, cfg.Measure = 8*units.Second, 15*units.Second
	}
	res := experiment.RunMinBufferSweep(cfg)
	if err := experiment.Render(os.Stdout, res); err != nil {
		return err
	}
	curve := &trace.Series{Name: "utilization"}
	for _, s := range res.Ladder {
		curve.Times = append(curve.Times, float64(s.N)*1e6+float64(s.Buffer))
		curve.Values = append(curve.Values, s.Utilization)
	}
	if err := r.writeCSV("fig7_ladder", curve); err != nil {
		return err
	}
	chart := &plot.Chart{
		Title:  "Minimum buffer vs number of long-lived flows",
		XLabel: "flows n", YLabel: "buffer (packets)",
		XLog: true, YLog: true,
	}
	byTarget := map[float64][][2]float64{}
	var targets []float64
	var rule [][2]float64
	seen := map[int]bool{}
	for _, p := range res.Points {
		if _, ok := byTarget[p.Target]; !ok {
			targets = append(targets, p.Target)
		}
		byTarget[p.Target] = append(byTarget[p.Target], [2]float64{float64(p.N), float64(p.MinBuffer)})
		if !seen[p.N] {
			seen[p.N] = true
			rule = append(rule, [2]float64{float64(p.N), float64(p.SqrtRule)})
		}
	}
	addSeries := func(name string, pts [][2]float64, style plot.Style) {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		chart.Add(name, style, xs, ys)
	}
	for _, target := range targets {
		addSeries(fmt.Sprintf("min buffer @ %.1f%%", 100*target), byTarget[target], plot.LinePoints)
	}
	addSeries("RTTxC/sqrt(n)", rule, plot.Line)
	return r.writeSVG("fig7_min_buffer", chart)
}

func (r runner) shortFlows() error {
	cfg := experiment.ShortFlowBufferConfig{Seed: r.seed, Metrics: r.child(), Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.Rates = []units.BitRate{20 * units.Mbps, 60 * units.Mbps}
		cfg.Warmup, cfg.Measure = 5*units.Second, 15*units.Second
	} else {
		// The figure's x-axis: sweep the flow length (burst structure).
		cfg.FlowLens = []int64{6, 14, 30, 62}
	}
	points := experiment.RunShortFlowBuffer(cfg)
	r.mergeMetrics("fig8", cfg.Metrics)
	if err := experiment.Render(os.Stdout, points); err != nil {
		return err
	}

	chart := &plot.Chart{
		Title:  "Short flows: min buffer for AFCT within 12.5% of infinite",
		XLabel: "flow length (segments)", YLabel: "buffer (packets)",
	}
	byRate := map[units.BitRate][][2]float64{}
	var rates []units.BitRate
	var model [][2]float64
	seenLen := map[int64]bool{}
	for _, p := range points {
		if _, ok := byRate[p.Rate]; !ok {
			rates = append(rates, p.Rate)
		}
		byRate[p.Rate] = append(byRate[p.Rate], [2]float64{float64(p.FlowLen), float64(p.MinBuffer)})
		if !seenLen[p.FlowLen] {
			seenLen[p.FlowLen] = true
			model = append(model, [2]float64{float64(p.FlowLen), p.ModelBuffer})
		}
	}
	add := func(name string, pts [][2]float64, style plot.Style) {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		chart.Add(name, style, xs, ys)
	}
	for _, rate := range rates {
		add(rate.String(), byRate[rate], plot.LinePoints)
	}
	add("M/G/1 model (P=0.025)", model, plot.Line)
	return r.writeSVG("fig8_short_flow_buffer", chart)
}

func (r runner) afct(sizes workload.SizeDist, name string) error {
	cfg := experiment.AFCTComparisonConfig{Seed: r.seed, Sizes: sizes, Metrics: r.child(), Audit: r.audit, Cache: r.cache, Shards: r.shards}
	if r.quick {
		cfg.NLong = 60
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	fmt.Printf("short-flow sizes: %v\n", sizes)
	res := experiment.RunAFCTComparison(cfg)
	r.mergeMetrics(name, cfg.Metrics)
	return experiment.Render(os.Stdout, res)
}

func (r runner) table(red bool) error {
	cfg := experiment.UtilizationTableConfig{Seed: r.seed, UseRED: red, Metrics: r.child(), Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Ns = []int{50, 100}
		cfg.Factors = []float64{0.5, 1, 2}
		cfg.Warmup, cfg.Measure = 8*units.Second, 15*units.Second
	}
	if red {
		fmt.Println("queue discipline: RED")
	}
	rows := experiment.RunUtilizationTable(cfg)
	id := "fig10"
	if red {
		id = "red"
	}
	r.mergeMetrics(id, cfg.Metrics)
	return experiment.Render(os.Stdout, rows)
}

func (r runner) production() error {
	cfg := experiment.ProductionConfig{Seed: r.seed, Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.NLong = 30
		cfg.Buffers = []int{8, 46, 300}
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	rows := experiment.RunProduction(cfg)
	return experiment.Render(os.Stdout, rows)
}

func (r runner) pacing() error {
	cfg := experiment.PacingConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.N = 20
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.BufferFactors = []float64{0.25, 1}
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	points := experiment.RunPacingAblation(cfg)
	return experiment.Render(os.Stdout, points)
}

func (r runner) smoothing() error {
	cfg := experiment.SmoothingConfig{Seed: r.seed, TailAt: 20, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Warmup, cfg.Measure = 8*units.Second, 30*units.Second
	}
	points := experiment.RunSmoothing(cfg)
	return experiment.Render(os.Stdout, points)
}

func (r runner) backbone() error {
	cfg := experiment.BackboneConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.BottleneckRate = 600 * units.Mbps
		cfg.N = 600
		cfg.Warmup, cfg.Measure = 8*units.Second, 15*units.Second
	}
	res := experiment.RunBackbone(cfg)
	return experiment.Render(os.Stdout, res)
}

func (r runner) multihop() error {
	cfg := experiment.MultiHopConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.LinkRate = 20 * units.Mbps
		cfg.NPerGroup = 40
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	res := experiment.RunMultiHop(cfg)
	return experiment.Render(os.Stdout, res)
}

func (r runner) variants() error {
	cfg := experiment.VariantConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.N = 60
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	points := experiment.RunVariantAblation(cfg)
	return experiment.Render(os.Stdout, points)
}

func (r runner) ecn() error {
	cfg := experiment.ECNConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.N = 100
		cfg.BottleneckRate = 40 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	res := experiment.RunECN(cfg)
	return experiment.Render(os.Stdout, res)
}

func (r runner) harpoon() error {
	cfg := experiment.HarpoonConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.BottleneckRate = 40 * units.Mbps
		cfg.Sessions = 500
		cfg.Warmup, cfg.Measure = 15*units.Second, 25*units.Second
	}
	res := experiment.RunHarpoon(cfg)
	return experiment.Render(os.Stdout, res)
}

func (r runner) codel() error {
	cfg := experiment.CoDelConfig{Seed: r.seed, Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.N = 100
		cfg.BottleneckRate = 40 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	rows := experiment.RunCoDel(cfg)
	return experiment.Render(os.Stdout, rows)
}

// ccFamilies is the updated-theory figure: the buffer each
// congestion-control family needs to reach (a fraction of) its own
// attainable utilization, as the flow count grows, against the 2004
// rule RTTxC/sqrt(n). Loss-based families track the rule; BBR's curve
// decouples from it.
func (r runner) ccFamilies() error {
	cfg := experiment.CCFamilyConfig{Seed: r.seed, Metrics: r.child(), Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Ns = []int{25, 50, 100}
		cfg.Warmup, cfg.Measure = 8*units.Second, 15*units.Second
	}
	table := experiment.RunCCFamily(cfg)
	r.mergeMetrics("ccfamilies", cfg.Metrics)
	if err := experiment.Render(os.Stdout, table); err != nil {
		return err
	}

	byVariant := map[string]*trace.Series{}
	var order []string
	rule := &trace.Series{Name: "sqrt_rule"}
	seenN := map[int]bool{}
	for _, p := range table {
		name := p.Variant.String()
		s, ok := byVariant[name]
		if !ok {
			s = &trace.Series{Name: name}
			byVariant[name] = s
			order = append(order, name)
		}
		s.Times = append(s.Times, float64(p.N))
		s.Values = append(s.Values, float64(p.MinBuffer))
		if !seenN[p.N] {
			seenN[p.N] = true
			rule.Times = append(rule.Times, float64(p.N))
			rule.Values = append(rule.Values, float64(p.SqrtRule))
		}
	}
	series := make([]*trace.Series, 0, len(order)+1)
	for _, name := range order {
		series = append(series, byVariant[name])
	}
	series = append(series, rule)
	if err := r.writeCSV("ccfamilies_min_buffer", series...); err != nil {
		return err
	}

	chart := &plot.Chart{
		Title:  "Required buffer vs flows across congestion-control families",
		XLabel: "flows n", YLabel: "buffer (packets)",
		XLog: true, YLog: true,
	}
	for _, name := range order {
		s := byVariant[name]
		chart.Add("min buffer ("+name+")", plot.LinePoints, s.Times, s.Values)
	}
	chart.Add("RTTxC/sqrt(n)", plot.Line, rule.Times, rule.Values)
	return r.writeSVG("ccfamilies_min_buffer", chart)
}

// flashCrowd is the time-varying-workload figure: how each buffer size
// rides out a surge where the arrival rate and the long-lived population
// n(t) spike together — the regime the 2004 rule's fixed n never
// modeled. -workload swaps in another profile shape (a preset name or a
// profile .json); curves are rescaled to the experiment's peak load and
// population, so they act as shapes.
func (r runner) flashCrowd() error {
	cfg := experiment.FlashCrowdConfig{Seed: r.seed, Metrics: r.child(), Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume, Shards: r.shards}
	if r.workload != "" {
		p, err := profile.FromArg(r.workload)
		if err != nil {
			return err
		}
		cfg.Profile = p
	}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Stations = 20
		cfg.PeakFlows = 8
		cfg.Buffers = []int{6, 25, 100, 250}
		cfg.Warmup = 2 * units.Second
		prof := cfg.Profile
		if len(prof.Arrival) == 0 && len(prof.Population) == 0 {
			prof = profile.FlashCrowd.Profile()
		}
		compressed, err := prof.Compress(4)
		if err != nil {
			return err
		}
		cfg.Profile = compressed
	}
	shape := cfg.Profile.Name
	if shape == "" {
		shape = profile.FlashCrowd.String()
	}
	fmt.Printf("workload profile: %s\n", shape)
	rows := experiment.RunFlashCrowd(cfg)
	r.mergeMetrics("flashcrowd", cfg.Metrics)
	if err := experiment.Render(os.Stdout, rows); err != nil {
		return err
	}

	util := &trace.Series{Name: "utilization"}
	loss := &trace.Series{Name: "loss_rate"}
	meanQ := &trace.Series{Name: "mean_queue"}
	peakN := &trace.Series{Name: "peak_active"}
	for _, row := range rows {
		x := float64(row.Buffer)
		util.Times = append(util.Times, x)
		util.Values = append(util.Values, row.Utilization)
		loss.Times = append(loss.Times, x)
		loss.Values = append(loss.Values, row.LossRate)
		meanQ.Times = append(meanQ.Times, x)
		meanQ.Values = append(meanQ.Values, row.MeanQueue)
		peakN.Times = append(peakN.Times, x)
		peakN.Values = append(peakN.Values, row.PeakActive)
	}
	if err := r.writeCSV("flashcrowd_buffer", util, loss, meanQ, peakN); err != nil {
		return err
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Flash crowd (%s): riding out the n(t) surge", shape),
		XLabel: "buffer (packets)", YLabel: "fraction",
		XLog: true,
	}
	chart.Add("utilization", plot.LinePoints, util.Times, util.Values)
	chart.Add("loss rate", plot.LinePoints, loss.Times, loss.Values)
	return r.writeSVG("flashcrowd_buffer", chart)
}

func (r runner) adversarial() error {
	cfg := experiment.AdversarialConfig{Seed: r.seed, Metrics: r.child(), Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.adversary != "" {
		p, err := adversary.ParsePattern(r.adversary)
		if err != nil {
			return err
		}
		cfg.Patterns = []adversary.Pattern{p}
		fmt.Printf("pattern %s: %s\n", p, p.Doc())
	}
	if r.quick {
		cfg.N = 8
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.BufferFactors = []float64{0.1, 0.5, 1.0}
		cfg.Hops = 2
		cfg.Warmup, cfg.Measure = 2*units.Second, 6*units.Second
	}
	table := experiment.RunAdversarial(cfg)
	r.mergeMetrics("adversarial", cfg.Metrics)
	if err := experiment.Render(os.Stdout, table); err != nil {
		return err
	}

	// One CSV per pattern: the failure-mode curves over the buffer ladder.
	byPattern := map[string][]experiment.AdversarialRow{}
	var order []string
	for _, row := range table {
		name := row.Pattern.String()
		if _, ok := byPattern[name]; !ok {
			order = append(order, name)
		}
		byPattern[name] = append(byPattern[name], row)
	}
	for _, name := range order {
		util := &trace.Series{Name: "utilization"}
		loss := &trace.Series{Name: "loss_rate"}
		for _, row := range byPattern[name] {
			util.Times = append(util.Times, row.BufferFactor)
			util.Values = append(util.Values, row.Utilization)
			loss.Times = append(loss.Times, row.BufferFactor)
			loss.Values = append(loss.Values, row.LossRate)
		}
		if err := r.writeCSV("adversarial_"+name, util, loss); err != nil {
			return err
		}
	}
	return nil
}

func (r runner) probeLadder() error {
	cfg := experiment.ProbeLadderConfig{Seed: r.seed, Cache: r.cache}
	if r.quick {
		cfg.Limits = []int{16, 64, 256}
	}
	table := experiment.RunProbeLadder(cfg)
	return experiment.Render(os.Stdout, table)
}

func (r runner) rttSpread() error {
	cfg := experiment.RTTSpreadConfig{Seed: r.seed, Parallelism: r.parallel, Audit: r.audit, Cache: r.cache, Resume: r.resume}
	if r.quick {
		cfg.N = 100
		cfg.BottleneckRate = 40 * units.Mbps
		cfg.Warmup, cfg.Measure = 10*units.Second, 25*units.Second
	}
	points := experiment.RunRTTSpread(cfg)
	return experiment.Render(os.Stdout, points)
}

func (r runner) sync() error {
	cfg := experiment.SyncConfig{Seed: r.seed, Audit: r.audit, Cache: r.cache}
	if r.quick {
		cfg.BottleneckRate = 20 * units.Mbps
		cfg.Ns = []int{5, 30, 120}
		cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
	}
	points := experiment.RunSyncAblation(cfg)
	return experiment.Render(os.Stdout, points)
}
