package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunnerQuickExperiments drives a cheap subset of the experiment ids
// end to end in quick mode, with CSV and SVG output, exactly as a user
// would. Guards the CLI plumbing (id dispatch, file writing) against
// regressions without paying for the expensive sweeps.
func TestRunnerQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (scaled) experiments")
	}
	dir := t.TempDir()
	r := runner{quick: true, seed: 1, csvDir: filepath.Join(dir, "csv"), svgDir: filepath.Join(dir, "svg")}

	for _, id := range []string{"fig2", "fig6", "ecn", "multihop", "variants", "codel", "ccfamilies", "adversarial", "probe"} {
		if err := r.run(id); err != nil {
			t.Fatalf("run(%q): %v", id, err)
		}
	}

	// The figure-producing ids must have written their artifacts.
	for _, want := range []string{
		"csv/fig2_rule_of_thumb.csv",
		"svg/fig2_rule_of_thumb.svg",
		"csv/fig6_window_distribution.csv",
		"svg/fig6_window_distribution.svg",
		"csv/ccfamilies_min_buffer.csv",
		"svg/ccfamilies_min_buffer.svg",
		"csv/adversarial_pulse.csv",
		"csv/adversarial_aimdsync.csv",
		"csv/adversarial_parkinglot.csv",
	} {
		path := filepath.Join(dir, want)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", want, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", want)
		}
		if strings.HasSuffix(want, ".svg") && !strings.Contains(string(data), "<svg") {
			t.Errorf("artifact %s is not SVG", want)
		}
		if strings.HasSuffix(want, ".csv") && !strings.Contains(string(data), "time_s") {
			t.Errorf("artifact %s has no CSV header", want)
		}
	}
}

// TestRunnerAdversaryFlag covers the -adversary pattern filter: a bad
// name fails fast, a valid one restricts the sweep to that pattern.
func TestRunnerAdversaryFlag(t *testing.T) {
	r := runner{quick: true, seed: 1, adversary: "no-such-pattern"}
	if err := r.run("adversarial"); err == nil {
		t.Error("bad -adversary pattern did not error")
	}
	if testing.Short() {
		t.Skip("runs a real (scaled) sweep")
	}
	r.adversary = "pulse"
	if err := r.run("adversarial"); err != nil {
		t.Fatalf("run(adversarial) with -adversary pulse: %v", err)
	}
}

func TestRunnerUnknownID(t *testing.T) {
	r := runner{quick: true}
	if err := r.run("fig99"); err == nil {
		t.Error("unknown experiment id did not error")
	}
}
