// Command bufsim runs one buffer-sizing scenario from the command line and
// prints the sizing rules next to the simulated outcome.
//
// Example — the paper's abstract, scaled to simulate quickly:
//
//	bufsim -rate 155Mbps -rtt 100ms -flows 400 -buffer-factor 1.0
//
// prints the rule-of-thumb and sqrt(n) buffer sizes, the Gaussian model's
// utilization prediction, and the measured utilization of a packet-level
// simulation with that buffer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"bufsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bufsim: ")

	var (
		rateStr   = flag.String("rate", "155Mbps", "bottleneck capacity C (e.g. 10Gbps)")
		rttStr    = flag.String("rtt", "100ms", "mean two-way propagation delay")
		spreadStr = flag.String("rtt-spread", "80ms", "RTT heterogeneity across flows")
		flows     = flag.Int("flows", 400, "number of long-lived TCP flows")
		factor    = flag.Float64("buffer-factor", 1.0, "buffer as a multiple of RTTxC/sqrt(n)")
		buffer    = flag.Int("buffer", 0, "explicit buffer in packets (overrides -buffer-factor)")
		segment   = flag.Int("segment", int(bufsim.DefaultSegment), "segment size in bytes")
		seed      = flag.Int64("seed", 1, "simulation seed")
		warmStr   = flag.String("warmup", "20s", "simulated warmup to discard")
		measStr   = flag.String("measure", "40s", "simulated measurement window")
		red       = flag.Bool("red", false, "use RED instead of drop-tail")
		variant   = flag.String("variant", "reno", "TCP flavour: "+strings.Join(bufsim.VariantNames(), ", "))
		paced     = flag.Bool("paced", false, "pace sender transmissions across the RTT")
		skipSim   = flag.Bool("no-sim", false, "print the sizing rules only")
		config    = flag.String("config", "", "JSON scenario file (overrides the other flags)")
		metrics   = flag.String("metrics", "", "write run telemetry to this JSON file")
		cpuprof   = flag.String("pprof", "", "write a CPU profile to this file")
		auditOn   = flag.Bool("audit", false, "run under the conservation-law checker; violations are reported and exit nonzero")
		cacheOn   = flag.Bool("cache", false, "memoize the result in a content-addressed store; a re-run with identical parameters replays from disk")
		cacheDir  = flag.String("cachedir", filepath.Join("results", "cache"), "directory for the -cache store")
		resume    = flag.Bool("resume", false, "alias for -cache (a single scenario has no checkpoints; see paperexp -resume for sweeps)")
		verify    = flag.Bool("cache-verify", false, "recompute a sample of cache hits and fail on digest mismatch (implies -cache)")
		wlArg     = flag.String("workload", "", "time-varying workload profile: a preset name ("+strings.Join(bufsim.ProfileNames(), ", ")+") or a profile .json file; runs the profile scenario instead of the long-lived one, with -flows as the peak population")
		wlLoad    = flag.Float64("workload-load", 0.85, "short-flow offered load at the profile's arrival peak")
		wlFlowLen = flag.Int64("workload-flow-length", 14, "short-flow size in segments for -workload")
		shards    = flag.Int("shards", 0, "parallel event shards for the kernel (0: sequential); results are bit-identical at any count")
		advArg    = flag.String("adversary", "", "adversarial pattern ("+strings.Join(bufsim.AdversaryNames(), ", ")+"); runs worst-case traffic instead of the long-lived scenario, with -flows as the cohort size")
	)
	flag.Parse()

	if *resume || *verify {
		*cacheOn = true
	}
	var cache *bufsim.Cache
	if *cacheOn {
		c, err := bufsim.OpenCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		if *verify {
			c.SetVerifySample(0.25)
		}
		cache = c
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *config != "" {
		sim, link, err := loadScenario(*config)
		if err != nil {
			log.Fatal(err)
		}
		printRules(link, sim.Flows, sim.BufferPackets)
		runAndPrint(link, sim, *skipSim, *metrics, *auditOn, cache, *shards)
		return
	}

	rate, err := bufsim.ParseBitRate(*rateStr)
	if err != nil {
		log.Fatal(err)
	}
	rtt, err := bufsim.ParseDuration(*rttStr)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := bufsim.ParseDuration(*spreadStr)
	if err != nil {
		log.Fatal(err)
	}
	warmup, err := bufsim.ParseDuration(*warmStr)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := bufsim.ParseDuration(*measStr)
	if err != nil {
		log.Fatal(err)
	}
	if *flows <= 0 {
		log.Fatal("-flows must be positive")
	}

	v, err := bufsim.ParseVariant(*variant)
	if err != nil {
		log.Fatalf("-variant: %v", err)
	}

	link := bufsim.Link{Rate: rate, RTT: rtt, SegmentSize: bufsim.ByteSize(*segment)}
	b := *buffer
	if b == 0 {
		b = int(*factor * float64(link.SqrtRule(*flows)))
		if b < 1 {
			b = 1
		}
	}
	printRules(link, *flows, b)
	if *advArg != "" {
		if *wlArg != "" {
			log.Fatal("-adversary and -workload are mutually exclusive")
		}
		runAdversaryAndPrint(*advArg, bufsim.AdversarySimulation{
			Seed: *seed, Link: link, Flows: *flows, BufferPackets: b,
			Warmup: warmup, Measure: measure,
		}, *skipSim, *metrics, *auditOn, cache)
		return
	}
	if *wlArg != "" {
		runProfileAndPrint(profileScenario{
			arg: *wlArg, load: *wlLoad, flowLen: *wlFlowLen,
			link: link, buffer: b, peakFlows: *flows,
			seed: *seed, warmup: warmup, measure: measure,
			red: *red, variant: v, paced: *paced,
		}, *skipSim, *metrics, *auditOn, cache, *shards)
		return
	}
	runAndPrint(link, bufsim.Simulation{
		Seed:          *seed,
		Link:          link,
		Flows:         *flows,
		BufferPackets: b,
		RTTSpread:     spread,
		Warmup:        warmup,
		Measure:       measure,
		RED:           *red,
		Variant:       v,
		Paced:         *paced,
	}, *skipSim, *metrics, *auditOn, cache, *shards)
}

// printRules shows the sizing rules and hardware verdict for the chosen
// buffer.
func printRules(link bufsim.Link, flows, buffer int) {
	seg := int(link.SegmentSize)
	if seg == 0 {
		seg = int(bufsim.DefaultSegment)
	}
	rot := link.RuleOfThumb()
	sqrt := link.SqrtRule(flows)
	fmt.Printf("link:            %v, RTT %v, %dB segments\n", link.Rate, link.RTT, seg)
	fmt.Printf("rule of thumb:   %d packets (%.1f Mbit)\n", rot, mbit(rot, seg))
	fmt.Printf("RTTxC/sqrt(%d): %d packets (%.1f Mbit) — %.1f%% smaller\n",
		flows, sqrt, mbit(sqrt, seg), 100*(1-float64(sqrt)/float64(rot)))
	fmt.Printf("chosen buffer:   %d packets (%.1f Mbit)\n", buffer, mbit(buffer, seg))
	fmt.Printf("hardware:        %s\n", link.MemoryFeasibility(buffer).Description)
	fmt.Printf("model predicts:  %.2f%% utilization\n", 100*link.PredictUtilization(flows, buffer))
}

// runAndPrint runs the simulation (unless skipped) and reports. When
// metricsPath is non-empty the run's telemetry registry is dumped there
// as JSON. When auditOn is set the run executes under the
// conservation-law checker and any violation is fatal. When cache is
// non-nil the result is memoized there.
func runAndPrint(link bufsim.Link, cfg bufsim.Simulation, skip bool, metricsPath string, auditOn bool, cache *bufsim.Cache, shards int) {
	if skip {
		return
	}
	var opts []bufsim.Option
	var reg *bufsim.Registry
	if metricsPath != "" {
		reg = bufsim.NewRegistry()
		opts = append(opts, bufsim.WithMetrics(reg))
	}
	var aud *bufsim.Auditor
	if auditOn {
		aud = bufsim.NewAuditor()
		opts = append(opts, bufsim.WithAudit(aud))
	}
	if cache != nil {
		opts = append(opts, bufsim.WithCacheStore(cache))
	}
	if shards > 1 {
		opts = append(opts, bufsim.WithShards(shards))
	}
	fmt.Printf("simulating %d %v flows for %v (+%v warmup)...\n",
		cfg.Flows, cfg.Variant, cfg.Measure, cfg.Warmup)
	res := bufsim.Simulate(cfg, opts...)
	fmt.Printf("measured:        %.2f%% utilization, %.3f%% loss, mean queue %.0f pkts, %.2f%% retransmits\n",
		100*res.Utilization, 100*res.LossRate, res.MeanQueuePackets, 100*res.RetransmitFraction)
	fmt.Printf("queueing delay:  mean %v, P99 %v; fairness %.3f\n",
		res.QueueDelayMean, res.QueueDelayP99, res.Fairness)
	if reg != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry:       written to %s\n", metricsPath)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			log.Fatalf("audit: %v", err)
		}
		fmt.Println("audit:           all invariants held")
	}
	if cache != nil {
		s := cache.Stats()
		if s.Hits > 0 {
			fmt.Println("cache:           hit — result replayed from a previous identical run")
		} else {
			fmt.Println("cache:           miss — result stored for next time")
		}
		if fails := cache.VerifyFailures(); len(fails) > 0 {
			log.Fatalf("cache-verify: recomputation mismatched the stored result (%d failure(s))", len(fails))
		}
	}
	if res.Utilization < 0.98 {
		fmt.Println("note: below 98% utilization — try a larger -buffer-factor or more flows")
	}
}

// runAdversaryAndPrint runs the -adversary scenario: one worst-case
// traffic pattern against the chosen buffer, reporting the failure-mode
// measurements instead of the long-lived scenario's.
func runAdversaryAndPrint(arg string, cfg bufsim.AdversarySimulation, skip bool, metricsPath string, auditOn bool, cache *bufsim.Cache) {
	p, err := bufsim.ParseAdversary(arg)
	if err != nil {
		log.Fatalf("-adversary: %v", err)
	}
	cfg.Pattern = p
	fmt.Printf("adversary:       %s — %s\n", p, p.Doc())
	if skip {
		return
	}
	if metricsPath != "" {
		log.Fatal("-metrics is not supported with -adversary (the pattern runners publish no telemetry)")
	}
	var opts []bufsim.Option
	var aud *bufsim.Auditor
	if auditOn {
		aud = bufsim.NewAuditor()
		opts = append(opts, bufsim.WithAudit(aud))
	}
	if cache != nil {
		opts = append(opts, bufsim.WithCacheStore(cache))
	}
	fmt.Printf("simulating %d-strong %s cohort for %v (+%v warmup)...\n",
		cfg.Flows, p, cfg.Measure, cfg.Warmup)
	res := bufsim.SimulateAdversary(cfg, opts...)
	fmt.Printf("measured:        %.2f%% utilization, %.3f%% loss, mean queue %.0f pkts, peak %d pkts\n",
		100*res.Utilization, 100*res.LossRate, res.MeanQueuePackets, res.PeakQueuePackets)
	if res.SyncIndex != 0 {
		fmt.Printf("sync index:      %.2f (1.0 = the desynchronized CLT prediction)\n", res.SyncIndex)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			log.Fatalf("audit: %v", err)
		}
		fmt.Println("audit:           all invariants held")
	}
	if cache != nil {
		s := cache.Stats()
		if s.Hits > 0 {
			fmt.Println("cache:           hit — result replayed from a previous identical run")
		} else {
			fmt.Println("cache:           miss — result stored for next time")
		}
		if fails := cache.VerifyFailures(); len(fails) > 0 {
			log.Fatalf("cache-verify: recomputation mismatched the stored result (%d failure(s))", len(fails))
		}
	}
	if res.Utilization < 0.98 {
		fmt.Println("note: below 98% utilization — the pattern defeated this buffer")
	}
}

// profileScenario carries the -workload invocation: a profile shape (a
// preset name or .json path) scaled so its arrival peak offers `load`
// and its population peak is `peakFlows` long-lived flows.
type profileScenario struct {
	arg       string
	load      float64
	flowLen   int64
	link      bufsim.Link
	buffer    int
	peakFlows int
	seed      int64
	warmup    bufsim.Duration
	measure   bufsim.Duration
	red       bool
	variant   bufsim.Variant
	paced     bool
}

// resolveProfile loads a .json profile or looks up a preset by name.
func resolveProfile(arg string) (bufsim.Profile, error) {
	if strings.HasSuffix(arg, ".json") {
		f, err := os.Open(arg)
		if err != nil {
			return bufsim.Profile{}, err
		}
		defer f.Close()
		p, err := bufsim.LoadProfile(f)
		if err != nil {
			return bufsim.Profile{}, fmt.Errorf("%s: %v", arg, err)
		}
		return p, nil
	}
	preset, err := bufsim.ParseProfile(arg)
	if err != nil {
		return bufsim.Profile{}, err
	}
	return preset.Profile(), nil
}

// runProfileAndPrint runs the -workload scenario through
// SimulateProfile and reports the surge's outcome.
func runProfileAndPrint(sc profileScenario, skip bool, metricsPath string, auditOn bool, cache *bufsim.Cache, shards int) {
	prof, err := resolveProfile(sc.arg)
	if err != nil {
		log.Fatalf("-workload: %v", err)
	}
	sizes := bufsim.FixedSize(sc.flowLen)
	scaled := prof.ScaleTo(bufsim.ArrivalRate(sc.load, sc.link, sizes), float64(sc.peakFlows))
	w, err := bufsim.ProfileWorkload(scaled, sizes, 0)
	if err != nil {
		log.Fatalf("-workload: %v", err)
	}
	if skip {
		return
	}
	opts := []bufsim.Option{
		bufsim.WithCongestionControl(sc.variant),
		bufsim.WithPacing(sc.paced),
	}
	var reg *bufsim.Registry
	if metricsPath != "" {
		reg = bufsim.NewRegistry()
		opts = append(opts, bufsim.WithMetrics(reg))
	}
	var aud *bufsim.Auditor
	if auditOn {
		aud = bufsim.NewAuditor()
		opts = append(opts, bufsim.WithAudit(aud))
	}
	if cache != nil {
		opts = append(opts, bufsim.WithCacheStore(cache))
	}
	if shards > 1 {
		opts = append(opts, bufsim.WithShards(shards))
	}
	fmt.Printf("simulating %q workload (peak load %.0f%%, peak %d long flows) for %v (+%v warmup)...\n",
		prof.Name, 100*sc.load, sc.peakFlows, sc.measure, sc.warmup)
	res := bufsim.SimulateProfile(bufsim.ProfileSimulation{
		Seed:          sc.seed,
		Link:          sc.link,
		BufferPackets: sc.buffer,
		Workload:      w,
		RED:           sc.red,
		Warmup:        sc.warmup,
		Measure:       sc.measure,
	}, opts...)
	fmt.Printf("measured:        %.2f%% utilization, %.3f%% loss, mean queue %.1f pkts (peak %d)\n",
		100*res.Utilization, 100*res.LossRate, res.MeanQueue, res.PeakQueue)
	fmt.Printf("flows:           peak n(t) %.0f (mean %.1f), %d launched; AFCT %v over %d completed (%d censored)\n",
		res.PeakActive, res.MeanActive, res.Generated, res.AFCT, res.Completed, res.Censored)
	if reg != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry:       written to %s\n", metricsPath)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			log.Fatalf("audit: %v", err)
		}
		fmt.Println("audit:           all invariants held")
	}
	if cache != nil {
		if cache.Stats().Hits > 0 {
			fmt.Println("cache:           hit — result replayed from a previous identical run")
		} else {
			fmt.Println("cache:           miss — result stored for next time")
		}
	}
}

func mbit(packets, segBytes int) float64 {
	return float64(packets) * float64(segBytes) * 8 / 1e6
}
