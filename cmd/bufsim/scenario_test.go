package main

import (
	"os"
	"path/filepath"
	"testing"

	"bufsim"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadScenario(t *testing.T) {
	path := writeConfig(t, `{
		"rate": "155Mbps", "rtt": "100ms", "rttSpread": "40ms",
		"flows": 300, "bufferFactor": 2.0,
		"variant": "sack", "paced": true, "delayedAck": true,
		"seed": 9, "warmup": "5s", "measure": "10s"
	}`)
	sim, link, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if link.Rate != bufsim.OC3 || link.RTT != 100*bufsim.Millisecond {
		t.Errorf("link = %+v", link)
	}
	if sim.Flows != 300 || sim.Seed != 9 || !sim.Paced || !sim.DelayedAck {
		t.Errorf("sim = %+v", sim)
	}
	if sim.Variant != bufsim.Sack {
		t.Errorf("variant = %v", sim.Variant)
	}
	// bufferFactor 2 x sqrt rule (1938/sqrt(300) ~ 112) ~ 224.
	if sim.BufferPackets < 220 || sim.BufferPackets > 228 {
		t.Errorf("BufferPackets = %d, want ~224", sim.BufferPackets)
	}
	if sim.Warmup != 5*bufsim.Second || sim.Measure != 10*bufsim.Second {
		t.Errorf("windows = %v/%v", sim.Warmup, sim.Measure)
	}
}

func TestLoadScenarioExplicitBufferWins(t *testing.T) {
	path := writeConfig(t, `{"rate": "10Mbps", "flows": 10, "buffer": 77, "bufferFactor": 3}`)
	sim, _, err := loadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if sim.BufferPackets != 77 {
		t.Errorf("BufferPackets = %d, want 77", sim.BufferPackets)
	}
	// Defaults fill in.
	if sim.Variant != bufsim.Reno || sim.Warmup != 20*bufsim.Second {
		t.Errorf("defaults not applied: %+v", sim)
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	cases := map[string]string{
		"missing rate":   `{"flows": 10}`,
		"bad rate":       `{"rate": "fast", "flows": 10}`,
		"bad rtt":        `{"rate": "10Mbps", "rtt": "late", "flows": 10}`,
		"zero flows":     `{"rate": "10Mbps"}`,
		"unknown field":  `{"rate": "10Mbps", "flows": 10, "bandwidth": 5}`,
		"bad variant":    `{"rate": "10Mbps", "flows": 10, "variant": "vegas"}`,
		"malformed json": `{"rate": `,
	}
	for name, body := range cases {
		if _, _, err := loadScenario(writeConfig(t, body)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, _, err := loadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: no error")
	}
}

func TestRepoExampleConfigLoads(t *testing.T) {
	// The checked-in example must stay valid.
	sim, _, err := loadScenario("../../configs/oc3-sack.json")
	if err != nil {
		t.Fatal(err)
	}
	if sim.Flows != 200 || sim.Variant != bufsim.Sack {
		t.Errorf("example config parsed oddly: %+v", sim)
	}
}
