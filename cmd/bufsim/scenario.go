package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"bufsim"
)

// scenarioFile is the JSON schema for -config: the flag set, as a file.
// Durations and rates are strings in the package's notation ("100ms",
// "155Mbps") so configs read like the paper.
//
//	{
//	  "rate": "155Mbps", "rtt": "100ms", "rttSpread": "80ms",
//	  "flows": 400, "bufferFactor": 1.0,
//	  "variant": "sack", "paced": false, "delayedAck": false,
//	  "seed": 1, "warmup": "20s", "measure": "40s"
//	}
//
// "variant" takes any registered congestion-control name — reno, tahoe,
// newreno, sack, cubic, bbr (see bufsim.VariantNames) — or an alias
// like "new-reno" or "bbrv1".
type scenarioFile struct {
	Rate         string  `json:"rate"`
	RTT          string  `json:"rtt"`
	RTTSpread    string  `json:"rttSpread"`
	Flows        int     `json:"flows"`
	BufferFactor float64 `json:"bufferFactor"`
	Buffer       int     `json:"buffer"`
	Segment      int     `json:"segment"`
	Variant      string  `json:"variant"`
	Paced        bool    `json:"paced"`
	DelayedAck   bool    `json:"delayedAck"`
	RED          bool    `json:"red"`
	Seed         int64   `json:"seed"`
	Warmup       string  `json:"warmup"`
	Measure      string  `json:"measure"`
}

// loadScenario reads and validates a scenario file into a Simulation plus
// the link it describes.
func loadScenario(path string) (bufsim.Simulation, bufsim.Link, error) {
	var zero bufsim.Simulation
	data, err := os.ReadFile(path)
	if err != nil {
		return zero, bufsim.Link{}, err
	}
	var sf scenarioFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sf); err != nil {
		return zero, bufsim.Link{}, fmt.Errorf("%s: %v", path, err)
	}

	parseDur := func(field, s, dflt string) (bufsim.Duration, error) {
		if s == "" {
			s = dflt
		}
		d, err := bufsim.ParseDuration(s)
		if err != nil {
			return 0, fmt.Errorf("%s: field %q: %v", path, field, err)
		}
		return d, nil
	}

	if sf.Rate == "" {
		return zero, bufsim.Link{}, fmt.Errorf("%s: field \"rate\" is required", path)
	}
	rate, err := bufsim.ParseBitRate(sf.Rate)
	if err != nil {
		return zero, bufsim.Link{}, fmt.Errorf("%s: field \"rate\": %v", path, err)
	}
	rtt, err := parseDur("rtt", sf.RTT, "100ms")
	if err != nil {
		return zero, bufsim.Link{}, err
	}
	spread, err := parseDur("rttSpread", sf.RTTSpread, "80ms")
	if err != nil {
		return zero, bufsim.Link{}, err
	}
	warmup, err := parseDur("warmup", sf.Warmup, "20s")
	if err != nil {
		return zero, bufsim.Link{}, err
	}
	measure, err := parseDur("measure", sf.Measure, "40s")
	if err != nil {
		return zero, bufsim.Link{}, err
	}
	if sf.Flows <= 0 {
		return zero, bufsim.Link{}, fmt.Errorf("%s: field \"flows\" must be positive", path)
	}

	variant, err := bufsim.ParseVariant(sf.Variant)
	if err != nil {
		return zero, bufsim.Link{}, fmt.Errorf("%s: %v", path, err)
	}

	link := bufsim.Link{Rate: rate, RTT: rtt, SegmentSize: bufsim.ByteSize(sf.Segment)}
	buffer := sf.Buffer
	if buffer == 0 {
		factor := sf.BufferFactor
		if factor == 0 {
			factor = 1
		}
		buffer = int(factor * float64(link.SqrtRule(sf.Flows)))
		if buffer < 1 {
			buffer = 1
		}
	}
	return bufsim.Simulation{
		Seed:          sf.Seed,
		Link:          link,
		Flows:         sf.Flows,
		BufferPackets: buffer,
		RTTSpread:     spread,
		Warmup:        warmup,
		Measure:       measure,
		RED:           sf.RED,
		Variant:       variant,
		Paced:         sf.Paced,
		DelayedAck:    sf.DelayedAck,
	}, link, nil
}
