// Package bufsim is a discrete-event TCP network simulator and analytical
// toolkit reproducing "Sizing Router Buffers" (Appenzeller, Keslassy,
// McKeown — SIGCOMM 2004).
//
// The paper's result: a bottleneck link of capacity C carrying n
// desynchronized long-lived TCP flows needs only
//
//	B = RTT x C / sqrt(n)
//
// of buffering — not the classical rule-of-thumb B = RTT x C — to stay at
// near-full utilization; and short, slow-start-only flows need a small
// buffer that depends only on offered load and burst sizes, independent of
// the line rate.
//
// Three entry points:
//
//   - Sizing rules and analytic models on a Link description:
//     Link{...}.RuleOfThumb(), Link{...}.SqrtRule(n),
//     Link{...}.PredictUtilization(n, buffer),
//     Link{...}.ShortFlowBuffer(load, pDrop, flowLen, maxWindow).
//
//   - Packet-level simulation: Simulate (many long-lived flows, with
//     pluggable congestion control — Reno/NewReno/SACK/Tahoe/CUBIC/BBR —
//     plus pacing, RED and delayed-ACK switches),
//     SimulateSingleFlow (the classic sawtooth, with time series),
//     SimulateShortFlows (Poisson short flows, flow-completion times),
//     SimulateMix (long + short flows competing, the Fig. 9 trade),
//     SimulateTrace (replay a recorded flow trace), and
//     SimulateProfile (any Workload — stationary Poisson, sessions,
//     trace replay, or a declarative time-varying Profile whose arrival
//     rate and flow population follow piecewise-linear curves).
//
//   - Full paper reproduction: the internal/experiment package drives
//     every figure and table; cmd/paperexp exposes them on the command
//     line and bench_test.go regenerates them as Go benchmarks.
//
// Every Simulate* entry point accepts functional Options that override the
// corresponding config fields, and every result implements the Result
// interface (Table, WriteJSON). The options matrix:
//
//	option                  Simulate  SimulateReplicated  SingleFlow  ShortFlows  Mix  Trace  Profile
//	WithCongestionControl      yes           yes             yes         yes      yes   yes     yes
//	WithVariant (alias)        yes           yes             yes         yes      yes   yes     yes
//	WithPacing                 yes           yes             yes         yes      yes   yes     yes
//	WithDelayedACK             yes           yes             yes         yes      yes   yes     yes
//	WithRED                    yes           yes             yes         yes      yes   yes     yes
//	WithMetrics                yes           yes             yes         yes      yes   yes     yes
//	WithAudit                  yes           yes             yes         yes      yes   yes     yes
//	WithCache                  yes           yes             yes         yes      yes   yes     yes
//	WithParallelism             -            yes              -           -        -     -       -
//	WithWorkload                -             -               -           -        -     -      yes
//
// WithRED switches the scenario's bottleneck queue from drop-tail to
// Random Early Detection sized to the same buffer; scenarios whose buffer
// is unlimited (BufferPackets 0 in ShortFlows/Trace) must set a positive
// buffer to use it. WithParallelism only affects entry points that fan
// out over multiple independent runs. WithMetrics attaches a telemetry
// Registry; telemetry only observes — the same seed produces identical
// packets with or without it. WithAudit runs the scenario under the
// conservation-law checker (see Auditor); auditing likewise only
// observes. WithCache memoizes results in a content-addressed on-disk
// store keyed by the full configuration: re-running an identical
// scenario returns the stored result instead of simulating (see Cache).
package bufsim

import (
	"fmt"
	"io"

	"bufsim/internal/experiment"
	"bufsim/internal/model"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// Variant selects the TCP congestion-control flavour for simulations.
type Variant = tcp.Variant

// Congestion-control variants. Reno, Tahoe, NewReno and SACK are the
// classic loss-based window algorithms the paper studied; Cubic and BBR
// are the modern families the updated buffer-sizing theory compares
// against the sqrt rule.
const (
	Reno    = tcp.Reno
	Tahoe   = tcp.Tahoe
	NewReno = tcp.NewReno
	Sack    = tcp.Sack
	Cubic   = tcp.Cubic
	BBR     = tcp.BBR
)

// ParseVariant parses a congestion-control name — "reno", "tahoe",
// "newreno", "sack", "cubic" or "bbr", case-insensitive, with common
// aliases like "new-reno" and "bbrv1" — into a Variant. The empty
// string parses as Reno, the zero value, so optional config fields
// round-trip. Variant also implements
// encoding.TextMarshaler/TextUnmarshaler, so JSON configs can carry the
// name directly.
func ParseVariant(s string) (Variant, error) { return tcp.ParseVariant(s) }

// VariantNames lists the canonical names of every registered
// congestion-control variant, in declaration order.
func VariantNames() []string { return tcp.VariantNames() }

// Re-exported quantity types, so callers need no internal imports.
type (
	// Duration is simulated time in nanoseconds.
	Duration = units.Duration
	// Time is an absolute simulated instant in nanoseconds.
	Time = units.Time
	// BitRate is bits per second.
	BitRate = units.BitRate
	// ByteSize is a size in bytes.
	ByteSize = units.ByteSize
)

// Re-exported unit constants.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
	OC3  = units.OC3
	OC12 = units.OC12
	OC48 = units.OC48

	Byte     = units.Byte
	Kilobyte = units.Kilobyte
	Megabyte = units.Megabyte

	// DefaultSegment is the packet size assumed when a Link or config
	// leaves SegmentSize zero.
	DefaultSegment = units.DefaultSegment
)

// ParseDuration parses "250ms", "2.5s", "80us", "10ns".
func ParseDuration(s string) (Duration, error) { return units.ParseDuration(s) }

// ParseBitRate parses "155Mbps", "2.5Gbps", "56Kbps".
func ParseBitRate(s string) (BitRate, error) { return units.ParseBitRate(s) }

// Link describes a bottleneck link for buffer sizing. RTT is the mean
// two-way propagation delay of the flows crossing it (the paper's
// RTT-bar), SegmentSize the packet size buffers are counted in.
type Link struct {
	Rate        BitRate
	RTT         Duration
	SegmentSize ByteSize // defaults to 1000 bytes
}

func (l Link) segment() ByteSize {
	if l.SegmentSize == 0 {
		return DefaultSegment
	}
	return l.SegmentSize
}

// BDP returns the link's bandwidth-delay product in packets.
func (l Link) BDP() int {
	return units.PacketsInFlight(l.Rate, l.RTT, l.segment())
}

// RuleOfThumb returns the classical B = RTT x C buffer in packets.
func (l Link) RuleOfThumb() int {
	return model.RuleOfThumbPackets(l.RTT, l.Rate, l.segment())
}

// SqrtRule returns the paper's B = RTT x C / sqrt(n) buffer in packets for
// n concurrent long-lived flows.
func (l Link) SqrtRule(n int) int {
	return model.SqrtRulePackets(l.RTT, l.Rate, l.segment(), n)
}

// PredictUtilization returns the Gaussian-model utilization estimate for a
// buffer of bufferPkts packets shared by n long-lived flows.
func (l Link) PredictUtilization(n, bufferPkts int) float64 {
	g := model.LongFlowGaussian{N: n, BDP: float64(l.BDP())}
	return g.Utilization(float64(bufferPkts))
}

// ShortFlowBuffer returns the §4 M/G/1 bound: the buffer (packets) that
// keeps short-flow drop probability at or below pDrop when flows of
// flowLen segments (slow start, window capped at maxWindow) offer the
// given load. Note the result does not depend on the link at all — that
// is the paper's point — so this is a plain function dressed as a method
// for discoverability.
func (Link) ShortFlowBuffer(load, pDrop float64, flowLen int64, maxWindow int) float64 {
	m := model.MomentsForFlowLength(flowLen, 2, maxWindow)
	return m.MinBuffer(load, pDrop)
}

// ShortFlowBufferForSizes is ShortFlowBuffer for an empirical flow-size
// sample (e.g. the sizes from a recorded trace) instead of a single
// length: burst moments are pooled across the sample, so heavy-tailed
// mixes — whose large flows emit many max-window bursts — get the larger
// buffer they actually need.
func (Link) ShortFlowBufferForSizes(load, pDrop float64, sizes []int64, maxWindow int) float64 {
	dist := make(map[int64]float64, len(sizes))
	w := 1 / float64(len(sizes))
	for _, s := range sizes {
		dist[s] += w
	}
	m := model.MomentsForDistribution(dist, 2, maxWindow)
	return m.MinBuffer(load, pDrop)
}

// Simulation is the configuration for Simulate: n long-lived TCP Reno
// flows sharing a drop-tail bottleneck.
type Simulation struct {
	Seed int64

	Link          Link
	Flows         int
	BufferPackets int

	// RTTSpread widens the per-flow RTTs to [RTT-RTTSpread/2,
	// RTT+RTTSpread/2]; heterogeneous RTTs are what desynchronize flows.
	RTTSpread Duration

	// Warmup and Measure default to 20 s and 40 s.
	Warmup, Measure Duration

	// RED switches the bottleneck to Random Early Detection.
	RED bool
	// Variant selects the congestion-control flavour (default Reno, the
	// paper's choice).
	Variant Variant
	// Paced spreads each sender's transmissions across the RTT instead
	// of ACK-clocked bursts.
	Paced bool
	// DelayedAck acknowledges every second segment, as modern receivers
	// do.
	DelayedAck bool
}

// SimulationResult summarizes a Simulate run. It implements Result.
type SimulationResult struct {
	Utilization        float64
	LossRate           float64
	MeanQueuePackets   float64
	RetransmitFraction float64
	Timeouts           int64
	// QueueDelayMean / QueueDelayP99 are per-packet bottleneck queueing
	// delays: the latency the buffer costs.
	QueueDelayMean Duration
	QueueDelayP99  Duration
	// Fairness is Jain's index over per-flow throughputs.
	Fairness float64
}

// Validate reports configuration errors before a run starts. Today the
// one hard constraint is the RTT spread: per-flow RTTs are drawn from
// [RTT-RTTSpread/2, RTT+RTTSpread/2], so a spread wider than twice the
// mean RTT would make the minimum negative. Simulate panics with the same
// message if handed an invalid config; call Validate first to get an
// error instead.
func (s Simulation) Validate() error {
	return validateSpread(s.Link.RTT, s.RTTSpread)
}

// validateSpread rejects RTT spreads that would push the low end of the
// per-flow RTT range to or below zero.
func validateSpread(rtt Duration, spread Duration) error {
	if spread < 0 {
		return fmt.Errorf("bufsim: RTTSpread %v is negative", spread)
	}
	if spread >= 2*rtt {
		return fmt.Errorf("bufsim: RTTSpread %v must be less than twice Link.RTT %v: the minimum per-flow RTT (RTT - RTTSpread/2 = %v) would not be positive", spread, rtt, rtt-spread/2)
	}
	return nil
}

// mustValidateSpread is the panic form used by the Simulate* entry points
// (their signatures predate Validate and return no error).
func mustValidateSpread(rtt Duration, spread Duration) {
	if err := validateSpread(rtt, spread); err != nil {
		panic(err.Error())
	}
}

// longLived lowers the public config plus applied options into the
// internal experiment config shared by Simulate and SimulateReplicated.
func (s Simulation) longLived(o options) experiment.LongLivedConfig {
	if o.variant != nil {
		s.Variant = *o.variant
	}
	if o.paced != nil {
		s.Paced = *o.paced
	}
	if o.delayedAck != nil {
		s.DelayedAck = *o.delayedAck
	}
	if o.red != nil {
		s.RED = *o.red
	}
	mustValidateSpread(s.Link.RTT, s.RTTSpread)
	return experiment.LongLivedConfig{
		Seed:           s.Seed,
		N:              s.Flows,
		BottleneckRate: s.Link.Rate,
		RTTMin:         s.Link.RTT - s.RTTSpread/2,
		RTTMax:         s.Link.RTT + s.RTTSpread/2,
		SegmentSize:    s.Link.segment(),
		BufferPackets:  s.BufferPackets,
		UseRED:         s.RED,
		Variant:        s.Variant,
		Paced:          s.Paced,
		DelayedAck:     s.DelayedAck,
		Warmup:         s.Warmup,
		Measure:        s.Measure,
		Metrics:        o.metrics,
		Audit:          o.audit,
		Cache:          o.cache,
		Shards:         o.shardCount(),
	}
}

// Simulate runs the long-lived-flow scenario and reports utilization. It
// is the programmatic version of "would this buffer keep my link busy?".
func Simulate(cfg Simulation, opts ...Option) SimulationResult {
	o := applyOptions(opts)
	r := experiment.RunLongLived(cfg.longLived(o))
	return SimulationResult{
		Utilization:        r.Utilization,
		LossRate:           r.LossRate,
		MeanQueuePackets:   r.MeanQueue,
		RetransmitFraction: r.RetransmitFraction,
		Timeouts:           r.Timeouts,
		QueueDelayMean:     r.QueueDelayMean,
		QueueDelayP99:      r.QueueDelayP99,
		Fairness:           r.Fairness,
	}
}

// ReplicatedResult aggregates a Simulate scenario across independent
// seeds: utilization statistics with the spread a single run cannot show.
type ReplicatedResult struct {
	Replicas        int
	MeanUtilization float64
	StdDev          float64
	Min, Max        float64
}

// SimulateReplicated runs the Simulate scenario under replicas different
// seeds (cfg.Seed, cfg.Seed+1, ...) and reports utilization statistics —
// the error bars the single-run entry point omits. Replicas run
// concurrently; WithParallelism bounds the workers (default: the
// machine's parallelism). Results are bit-identical at any worker count.
func SimulateReplicated(cfg Simulation, replicas int, opts ...Option) ReplicatedResult {
	o := applyOptions(opts)
	run := cfg.longLived(o)
	if o.parallelism != nil {
		run.Parallelism = *o.parallelism
	}
	r := experiment.RunLongLivedReplicated(run, replicas)
	return ReplicatedResult{
		Replicas:        r.Replicas,
		MeanUtilization: r.MeanUtilization,
		StdDev:          r.StdDev,
		Min:             r.Min,
		Max:             r.Max,
	}
}

// SingleFlowResult is the outcome of SimulateSingleFlow: summary metrics
// plus the cwnd and queue time series of Figs. 2-5 (times in seconds).
type SingleFlowResult struct {
	BDPPackets    int
	BufferPackets int
	Utilization   float64
	MeanQueue     float64
	MinQueueSeen  float64
	CwndTimes     []float64
	CwndValues    []float64
	QueueTimes    []float64
	QueueValues   []float64
}

// SimulateSingleFlow runs one long-lived flow with the buffer set to
// bufferFactor x (RTT x C): 1.0 reproduces Fig. 3, less Fig. 4, more
// Fig. 5.
func SimulateSingleFlow(link Link, bufferFactor float64, seed int64, opts ...Option) SingleFlowResult {
	o := applyOptions(opts)
	run := experiment.SingleFlowConfig{
		Seed:           seed,
		BottleneckRate: link.Rate,
		RTT:            link.RTT,
		SegmentSize:    link.segment(),
		BufferFactor:   bufferFactor,
		Metrics:        o.metrics,
		Audit:          o.audit,
		Cache:          o.cache,
		Shards:         o.shardCount(),
	}
	if o.variant != nil {
		run.Variant = *o.variant
	}
	if o.paced != nil {
		run.Paced = *o.paced
	}
	if o.delayedAck != nil {
		run.DelayedAck = *o.delayedAck
	}
	if o.red != nil {
		run.UseRED = *o.red
	}
	r := experiment.RunSingleFlow(run)
	return SingleFlowResult{
		BDPPackets:    r.BDPPackets,
		BufferPackets: r.BufferPackets,
		Utilization:   r.Utilization,
		MeanQueue:     r.MeanQueue,
		MinQueueSeen:  r.MinQueueSeen,
		CwndTimes:     r.Cwnd.Times,
		CwndValues:    r.Cwnd.Values,
		QueueTimes:    r.Queue.Times,
		QueueValues:   r.Queue.Values,
	}
}

// ShortFlowSimulation configures SimulateShortFlows.
type ShortFlowSimulation struct {
	Seed int64

	Link          Link
	BufferPackets int // 0 means unlimited (the paper's baseline)
	Load          float64
	FlowLength    int64 // segments per flow
	MaxWindow     int   // receiver window cap (default 43)

	// RED switches the bottleneck to Random Early Detection sized to
	// BufferPackets (which must then be positive).
	RED bool

	Warmup, Measure Duration
}

// ShortFlowResult summarizes SimulateShortFlows.
type ShortFlowResult struct {
	AFCT      Duration
	Completed int
	Censored  int
}

// SimulateShortFlows runs Poisson arrivals of fixed-size slow-start flows
// and reports the average flow completion time — the §4/§5.1.2 metric.
func SimulateShortFlows(cfg ShortFlowSimulation, opts ...Option) ShortFlowResult {
	o := applyOptions(opts)
	run := experiment.ShortFlowRunConfig{
		Seed:          cfg.Seed,
		Rate:          cfg.Link.Rate,
		MeanRTT:       cfg.Link.RTT,
		SegmentSize:   cfg.Link.segment(),
		BufferPackets: cfg.BufferPackets,
		Load:          cfg.Load,
		FlowLength:    cfg.FlowLength,
		MaxWindow:     cfg.MaxWindow,
		UseRED:        cfg.RED,
		Warmup:        cfg.Warmup,
		Measure:       cfg.Measure,
		Metrics:       o.metrics,
		Audit:         o.audit,
		Cache:         o.cache,
		Shards:        o.shardCount(),
	}
	if o.variant != nil {
		run.Variant = *o.variant
	}
	if o.paced != nil {
		run.Paced = *o.paced
	}
	if o.delayedAck != nil {
		run.DelayedAck = *o.delayedAck
	}
	if o.red != nil {
		run.UseRED = *o.red
	}
	afct, completed, censored := experiment.ShortFlowAFCT(run)
	return ShortFlowResult{AFCT: afct, Completed: completed, Censored: censored}
}

// MixSimulation configures SimulateMix: long-lived flows competing with
// Poisson short flows over a single bottleneck — the paper's §5.1.3 mixed
// workload, at one explicit buffer size.
type MixSimulation struct {
	Seed int64

	Link          Link
	LongFlows     int
	ShortLoad     float64           // bottleneck load offered by short flows
	ShortSizes    workload.SizeDist // nil: geometric with mean 14 segments
	MaxWindow     int               // short flows' receiver cap (default 43)
	BufferPackets int

	// RED switches the bottleneck to Random Early Detection sized to
	// BufferPackets.
	RED bool

	RTTSpread       Duration
	Warmup, Measure Duration
}

// MixResult summarizes SimulateMix.
type MixResult struct {
	AFCT            Duration // short flows' average completion time
	ShortsCompleted int
	Utilization     float64
	MeanQueue       float64
}

// Validate reports configuration errors before a run starts; see
// Simulation.Validate.
func (s MixSimulation) Validate() error {
	return validateSpread(s.Link.RTT, s.RTTSpread)
}

// SimulateMix runs the mixed long/short workload and reports the short
// flows' completion time alongside link utilization — the trade Fig. 9
// explores: smaller buffers keep utilization while completing short flows
// faster.
func SimulateMix(cfg MixSimulation, opts ...Option) MixResult {
	o := applyOptions(opts)
	mustValidateSpread(cfg.Link.RTT, cfg.RTTSpread)
	sizes := cfg.ShortSizes
	if sizes == nil {
		sizes = workload.GeometricSize(14)
	}
	run := experiment.MixedConfig{
		Seed:           cfg.Seed,
		NLong:          cfg.LongFlows,
		ShortLoad:      cfg.ShortLoad,
		Sizes:          sizes,
		BottleneckRate: cfg.Link.Rate,
		RTTMin:         cfg.Link.RTT - cfg.RTTSpread/2,
		RTTMax:         cfg.Link.RTT + cfg.RTTSpread/2,
		SegmentSize:    cfg.Link.segment(),
		MaxWindow:      cfg.MaxWindow,
		BufferPackets:  cfg.BufferPackets,
		UseRED:         cfg.RED,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Metrics:        o.metrics,
		Audit:          o.audit,
		Cache:          o.cache,
		Shards:         o.shardCount(),
	}
	if o.variant != nil {
		run.Variant = *o.variant
	}
	if o.paced != nil {
		run.Paced = *o.paced
	}
	if o.delayedAck != nil {
		run.DelayedAck = *o.delayedAck
	}
	if o.red != nil {
		run.UseRED = *o.red
	}
	out := experiment.RunMixed(run)
	return MixResult{
		AFCT:            out.AFCT,
		ShortsCompleted: out.Completed,
		Utilization:     out.Utilization,
		MeanQueue:       out.MeanQueue,
	}
}

// TraceFlow is one recorded flow for SimulateTrace: when it starts
// (relative to the simulation start) and its size in segments.
type TraceFlow = workload.FlowSpec

// ParseTrace reads a "start_seconds,size_segments" CSV of flows (comments
// and a header line tolerated), for replay with SimulateTrace. Rows must
// be ordered by start time; out-of-order rows are an error.
//
// Deprecated: use ReadFlows, which additionally accepts JSON flow
// records.
func ParseTrace(r io.Reader) ([]TraceFlow, error) { return workload.ParseTrace(r) }

// TraceSimulation configures SimulateTrace: replay recorded flows over a
// bottleneck with a given buffer.
type TraceSimulation struct {
	Seed int64

	Link          Link
	Flows         []TraceFlow
	BufferPackets int // 0 = unlimited
	MaxWindow     int
	RTTSpread     Duration

	// RED switches the bottleneck to Random Early Detection sized to
	// BufferPackets (which must then be positive).
	RED bool
}

// TraceResult summarizes a replayed trace.
type TraceResult struct {
	Completed   int
	Censored    int
	AFCT        Duration
	Utilization float64
}

// Validate reports configuration errors before a run starts; see
// Simulation.Validate.
func (s TraceSimulation) Validate() error {
	return validateSpread(s.Link.RTT, s.RTTSpread)
}

// SimulateTrace replays a recorded flow-level trace (instead of a
// synthetic arrival process) and reports completion statistics — the
// entry point for driving the simulator with real measurement data.
func SimulateTrace(cfg TraceSimulation, opts ...Option) TraceResult {
	o := applyOptions(opts)
	mustValidateSpread(cfg.Link.RTT, cfg.RTTSpread)
	run := experiment.TraceConfig{
		Seed:           cfg.Seed,
		Flows:          cfg.Flows,
		BottleneckRate: cfg.Link.Rate,
		RTTMin:         cfg.Link.RTT - cfg.RTTSpread/2,
		RTTMax:         cfg.Link.RTT + cfg.RTTSpread/2,
		SegmentSize:    cfg.Link.segment(),
		MaxWindow:      cfg.MaxWindow,
		BufferPackets:  cfg.BufferPackets,
		UseRED:         cfg.RED,
		Metrics:        o.metrics,
		Audit:          o.audit,
		Cache:          o.cache,
		Shards:         o.shardCount(),
	}
	if o.variant != nil {
		run.Variant = *o.variant
	}
	if o.paced != nil {
		run.Paced = *o.paced
	}
	if o.delayedAck != nil {
		run.DelayedAck = *o.delayedAck
	}
	if o.red != nil {
		run.UseRED = *o.red
	}
	r := experiment.RunTrace(run)
	return TraceResult{
		Completed:   r.Completed,
		Censored:    r.Censored,
		AFCT:        r.AFCT,
		Utilization: r.Utilization,
	}
}

// Pareto returns the heavy-tailed flow-size distribution used by the
// production-mix experiments, exposed for workload construction.
func Pareto(shape float64, minSeg, maxSeg int64) workload.SizeDist {
	return workload.ParetoSize{Shape: shape, Min: minSeg, Max: maxSeg}
}

// Memory is the §1.3 hardware-feasibility verdict for a buffer size: what
// it takes to build it from 2004-vintage commodity memory. It is how the
// paper argues the sqrt(n) rule matters — the difference between boards
// of DRAM and a corner of the packet processor die.
type Memory struct {
	SRAMChips   int  // 36 Mbit devices to hold the buffer
	DRAMChips   int  // 1 Gbit devices to hold the buffer
	DRAMKeepsUp bool // can 50 ns DRAM sustain per-packet access at this rate?
	FitsOnChip  bool // fits in a 256 Mbit embedded-DRAM packet processor?
	Description string
}

// MemoryFeasibility evaluates a buffer of bufferPkts packets on this link
// against the paper's memory technologies.
func (l Link) MemoryFeasibility(bufferPkts int) Memory {
	f := model.Feasibility(l.Rate, ByteSize(bufferPkts)*l.segment())
	return Memory{
		SRAMChips:   f.SRAMChips,
		DRAMChips:   f.DRAMChips,
		DRAMKeepsUp: f.DRAMKeepsUp,
		FitsOnChip:  f.FitsOnChip,
		Description: f.String(),
	}
}
