package bufsim_test

import (
	"fmt"

	"bufsim"
)

// The paper's abstract in four lines: the rule-of-thumb buffer for a
// 10 Gb/s backbone link versus the sqrt(n) buffer at backbone flow counts.
func ExampleLink_SqrtRule() {
	link := bufsim.Link{Rate: 10 * bufsim.Gbps, RTT: 250 * bufsim.Millisecond}
	fmt.Println("rule of thumb:", link.RuleOfThumb(), "packets")
	fmt.Println("with 50000 flows:", link.SqrtRule(50000), "packets")
	// Output:
	// rule of thumb: 312500 packets
	// with 50000 flows: 1398 packets
}

// Short flows need a buffer that depends only on load and burst sizes —
// the same at 40 Mb/s and 1 Tb/s.
func ExampleLink_ShortFlowBuffer() {
	small := bufsim.Link{Rate: 40 * bufsim.Mbps, RTT: 100 * bufsim.Millisecond}
	huge := bufsim.Link{Rate: 1000 * bufsim.Gbps, RTT: 100 * bufsim.Millisecond}
	fmt.Printf("40 Mb/s: %.1f packets\n", small.ShortFlowBuffer(0.8, 0.025, 14, 43))
	fmt.Printf("1 Tb/s:  %.1f packets\n", huge.ShortFlowBuffer(0.8, 0.025, 14, 43))
	// Output:
	// 40 Mb/s: 44.3 packets
	// 1 Tb/s:  44.3 packets
}

// The hardware consequence (§1.3): the same 40 Gb/s linecard needs
// hundreds of SRAM chips under the old rule, or fits on-chip under the
// new one.
func ExampleLink_MemoryFeasibility() {
	link := bufsim.Link{Rate: 40 * bufsim.Gbps, RTT: 250 * bufsim.Millisecond}
	big := link.MemoryFeasibility(link.RuleOfThumb())
	small := link.MemoryFeasibility(link.SqrtRule(200000))
	fmt.Println("rule of thumb: ", big.SRAMChips, "SRAM chips; on-chip:", big.FitsOnChip)
	fmt.Println("sqrt(n) buffer:", small.SRAMChips, "SRAM chip; on-chip:", small.FitsOnChip)
	// Output:
	// rule of thumb:  278 SRAM chips; on-chip: false
	// sqrt(n) buffer: 1 SRAM chip; on-chip: true
}

// Parsing helpers accept the notation used throughout the paper.
func ExampleParseBitRate() {
	r, _ := bufsim.ParseBitRate("2.5Gbps")
	d, _ := bufsim.ParseDuration("250ms")
	fmt.Println(r, d)
	// Output:
	// 2500Mbps 250ms
}
