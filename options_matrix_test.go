package bufsim

import (
	"fmt"
	"reflect"
	"testing"
)

// matrixEntryPoints wraps every public Simulate* entry point around a
// deliberately tiny scenario, so the full entry-point × option matrix
// below stays cheap enough for the ordinary test run.
var matrixEntryPoints = []struct {
	name string
	run  func(opts ...Option) any
}{
	{"Simulate", func(opts ...Option) any {
		return Simulate(Simulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			Flows: 8, BufferPackets: 20,
			RTTSpread: 20 * Millisecond,
			Warmup:    1 * Second, Measure: 2 * Second,
		}, opts...)
	}},
	{"SimulateReplicated", func(opts ...Option) any {
		return SimulateReplicated(Simulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			Flows: 8, BufferPackets: 20,
			RTTSpread: 20 * Millisecond,
			Warmup:    1 * Second, Measure: 2 * Second,
		}, 2, opts...)
	}},
	{"SimulateSingleFlow", func(opts ...Option) any {
		return SimulateSingleFlow(Link{Rate: 10 * Mbps, RTT: 50 * Millisecond}, 1, 1, opts...)
	}},
	{"SimulateShortFlows", func(opts ...Option) any {
		return SimulateShortFlows(ShortFlowSimulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			BufferPackets: 30, Load: 0.5, FlowLength: 14,
			Warmup: 1 * Second, Measure: 2 * Second,
		}, opts...)
	}},
	{"SimulateMix", func(opts ...Option) any {
		return SimulateMix(MixSimulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			LongFlows: 4, ShortLoad: 0.2, BufferPackets: 30,
			RTTSpread: 20 * Millisecond,
			Warmup:    1 * Second, Measure: 2 * Second,
		}, opts...)
	}},
	{"SimulateProfile", func(opts ...Option) any {
		return SimulateProfile(ProfileSimulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			BufferPackets: 30, Stations: 10,
			Workload: matrixProfileWorkload(),
			Warmup:   1 * Second, Measure: 3 * Second, Drain: 10 * Second,
		}, opts...)
	}},
	{"SimulateTrace", func(opts ...Option) any {
		return SimulateTrace(TraceSimulation{
			Seed: 1, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
			Flows: []TraceFlow{
				{Start: 0, Size: 10},
				{Start: 100 * Millisecond, Size: 30},
				{Start: 300 * Millisecond, Size: 5},
			},
			BufferPackets: 30,
		}, opts...)
	}},
}

// matrixProfileWorkload is the tiny time-varying workload the matrix
// drives SimulateProfile with: the flash-crowd shape compressed 12x so
// the spike lands inside the short measurement window.
func matrixProfileWorkload() Workload {
	p, err := FlashCrowdProfile.Profile().Compress(12)
	if err != nil {
		panic(err)
	}
	w, err := ProfileWorkload(p.ScaleTo(20, 4), GeometricSize(10), 16)
	if err != nil {
		panic(err)
	}
	return w
}

// TestOptionsMatrix runs every public entry point under every functional
// option, per the matrix in the package documentation: each combination
// must run (not just compile), observers must not perturb the result,
// and a cached re-run must hit and replay the result bit-identically.
func TestOptionsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	for _, ep := range matrixEntryPoints {
		t.Run(ep.name, func(t *testing.T) {
			base := ep.run()

			options := []struct {
				name string
				opt  Option
				// observer options must leave the result bit-identical
				// to the optionless run
				observer bool
			}{
				{"WithRED", WithRED(true), false},
				{"WithPacing", WithPacing(true), false},
				{"WithDelayedACK", WithDelayedACK(true), false},
				{"WithMetrics", WithMetrics(NewRegistry()), true},
				{"WithAudit", WithAudit(NewAuditor()), true},
			}
			for _, o := range options {
				t.Run(o.name, func(t *testing.T) {
					got := ep.run(o.opt)
					if o.observer && !reflect.DeepEqual(got, base) {
						t.Errorf("observer option perturbed the result:\ngot  %+v\nbase %+v", got, base)
					}
				})
			}

			t.Run("WithCongestionControl", func(t *testing.T) {
				// The alias and the primary name must configure runs
				// identically, for every registered variant.
				for _, name := range VariantNames() {
					v, err := ParseVariant(name)
					if err != nil {
						t.Fatal(err)
					}
					primary := ep.run(WithCongestionControl(v))
					alias := ep.run(WithVariant(v))
					if !reflect.DeepEqual(primary, alias) {
						t.Errorf("%s: WithVariant alias diverged from WithCongestionControl", name)
					}
				}
			})

			t.Run("WithCache", func(t *testing.T) {
				cache, err := OpenCache(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				cold := ep.run(WithCacheStore(cache))
				if !reflect.DeepEqual(cold, base) {
					t.Errorf("caching perturbed the result:\ngot  %+v\nbase %+v", cold, base)
				}
				before := cache.Stats()
				warm := ep.run(WithCacheStore(cache))
				if hits := cache.Stats().Hits - before.Hits; hits == 0 {
					t.Error("identical rerun missed the cache")
				}
				if !reflect.DeepEqual(warm, cold) {
					t.Errorf("cache replay differs from the computed result:\nwarm %+v\ncold %+v", warm, cold)
				}
			})
		})
	}
}

// TestWithWorkloadMatrix drives SimulateProfile through WithWorkload
// for every workload family, each crossed with the observer and policy
// options: audited runs must be clean, metrics must not perturb,
// WithRED must change the scenario, and cached runs must replay
// bit-identically with the workload participating in the key.
func TestWithWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := ProfileSimulation{
		Seed: 2, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
		BufferPackets: 30, Stations: 10,
		Warmup: 1 * Second, Measure: 3 * Second, Drain: 10 * Second,
	}
	workloads := []struct {
		name string
		w    Workload
	}{
		{"poisson", PoissonWorkload(0.5, FixedSize(14), 16)},
		{"sessions", SessionWorkload(6, GeometricSize(10), 200*Millisecond, 16)},
		{"trace", TraceWorkload([]TraceFlow{
			{Start: 0, Size: 10}, {Start: 500 * Millisecond, Size: 30}, {Start: 1 * Second, Size: 5},
		}, 16)},
		{"profile", matrixProfileWorkload()},
	}
	keys := make(map[string]ProfileResult)
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			run := func(opts ...Option) ProfileResult {
				return SimulateProfile(base, append([]Option{WithWorkload(wl.w)}, opts...)...)
			}
			plain := run()
			if plain.Generated == 0 {
				t.Fatal("workload generated no flows")
			}

			aud := NewAuditor()
			if got := run(WithAudit(aud)); got != plain {
				t.Errorf("audit perturbed the result:\ngot  %+v\nbase %+v", got, plain)
			}
			if aud.Count() > 0 {
				t.Fatalf("audit violations:\n%s", aud)
			}
			if got := run(WithMetrics(NewRegistry())); got != plain {
				t.Errorf("metrics perturbed the result:\ngot  %+v\nbase %+v", got, plain)
			}
			if red := run(WithRED(true)); red == plain {
				t.Error("WithRED did not change the scenario")
			}

			cold := run(WithCacheStore(cache))
			if cold != plain {
				t.Errorf("caching perturbed the result:\ngot  %+v\nbase %+v", cold, plain)
			}
			before := cache.Stats()
			if warm := run(WithCacheStore(cache)); warm != cold {
				t.Errorf("cache replay differs:\nwarm %+v\ncold %+v", warm, cold)
			}
			if cache.Stats().Hits == before.Hits {
				t.Error("identical rerun missed the cache")
			}
			keys[wl.name] = cold
		})
	}
	// Different workloads over the same scenario must produce different
	// results — i.e. the workload really participates in the cache key
	// and the simulation, rather than all mapping to one run.
	seen := make(map[ProfileResult]string)
	for name, res := range keys {
		if other, dup := seen[res]; dup {
			t.Errorf("workloads %q and %q produced identical results", name, other)
		}
		seen[res] = name
	}
}

// TestVariantSwitchMatrix runs every registered congestion-control
// variant under every combination of the behavioural switches (pacing,
// delayed ACK, RED), each under the conservation-law auditor and each
// cached then replayed: the pluggable-CC redesign must compose with the
// whole option surface, not just run standalone.
func TestVariantSwitchMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulation runs")
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range VariantNames() {
		v, err := ParseVariant(name)
		if err != nil {
			t.Fatal(err)
		}
		for mask := 0; mask < 8; mask++ {
			paced, delack, red := mask&1 != 0, mask&2 != 0, mask&4 != 0
			label := fmt.Sprintf("%s/paced=%v,delack=%v,red=%v", name, paced, delack, red)
			t.Run(label, func(t *testing.T) {
				run := func(opts ...Option) SimulationResult {
					return Simulate(Simulation{
						Seed: 3, Link: Link{Rate: 10 * Mbps, RTT: 50 * Millisecond},
						Flows: 6, BufferPackets: 25,
						RTTSpread: 20 * Millisecond,
						Warmup:    1 * Second, Measure: 2 * Second,
					}, append([]Option{
						WithCongestionControl(v), WithPacing(paced),
						WithDelayedACK(delack), WithRED(red),
					}, opts...)...)
				}
				aud := NewAuditor()
				base := run(WithAudit(aud))
				if aud.Count() > 0 {
					t.Fatalf("audit violations:\n%s", aud)
				}
				if base.Utilization <= 0 || base.Utilization > 1.0001 {
					t.Errorf("utilization = %v", base.Utilization)
				}
				if cold := run(WithCacheStore(cache)); !reflect.DeepEqual(cold, base) {
					t.Errorf("cached run diverged:\ncold %+v\nbase %+v", cold, base)
				}
				if warm := run(WithCacheStore(cache)); !reflect.DeepEqual(warm, base) {
					t.Errorf("cache replay diverged:\nwarm %+v\nbase %+v", warm, base)
				}
			})
		}
	}
}
