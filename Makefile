# Every target here is what CI runs — keep them in sync so "it passed
# locally" and "it passed CI" mean the same thing.

GO  ?= go
BIN := bin

.PHONY: all build fmt-check lint vet test short race mutation fuzz-smoke \
        bench-smoke golden bench bench-gate bench-scale bench-scale-gate clean

all: build lint test

build:
	$(GO) build ./...

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# lint builds the first-party vettool and runs its nine analyzers
# (simdeterminism, maporder, unitsafety, digestfield, eventcapture,
# shardsafety, shardownership, slabescape, rngconfinement) over the
# tree — including cmd/buflint and internal/lint themselves — through
# go vet's unitchecker protocol. Blocking: any finding fails the build,
# and so does a stale //lint:ignore. See DESIGN.md "Static analysis".
lint: $(BIN)/buflint
	$(GO) vet -vettool=$(abspath $(BIN)/buflint) ./...

$(BIN)/buflint: FORCE
	$(GO) build -o $(BIN)/buflint ./cmd/buflint

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# mutation proves the conservation auditor detects a seeded accounting
# bug (build tag auditmutation plants it in DropTail).
mutation:
	$(GO) test -tags auditmutation -run TestAuditMutation ./internal/queue/

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzQueueConservation -fuzztime 30s ./internal/queue/
	$(GO) test -run '^$$' -fuzz FuzzSchedulerInvariants -fuzztime 30s ./internal/sim/
	$(GO) test -run '^$$' -fuzz FuzzFrontierMerge -fuzztime 30s ./internal/sim/
	$(GO) test -run '^$$' -fuzz FuzzClassifier -fuzztime 30s ./internal/probe/

# bench-smoke only checks the benchmarks still compile and run one
# iteration; -short keeps the expensive paper reproductions out.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

golden:
	$(GO) test -run TestGolden -v ./internal/experiment/

# bench regenerates the kernel benchmark report against the checked-in
# baseline (reference numbers come from a quiet machine at GOMAXPROCS=1).
bench:
	GOMAXPROCS=1 $(GO) run ./bench -out BENCH_kernel_ci.json -baseline BENCH_kernel.json

# bench-gate re-measures and fails if events/sec fell more than 5%
# below the checked-in BENCH_kernel.json — the budget the pluggable
# congestion-control indirection (and any future abstraction on the
# per-event path) must fit within.
bench-gate:
	GOMAXPROCS=1 $(GO) run ./bench -out BENCH_kernel_ci.json -gate BENCH_kernel.json

# bench-scale regenerates the flows x shards scaling curve (plus the
# fabric shape and the million-sender slab footprint) against the
# checked-in BENCH_scale.json; bench-scale-gate fails if any cell's
# events/sec fell more than 5% below it — the budget the sharded
# engine's bookkeeping must fit within on a sequential run.
bench-scale:
	GOMAXPROCS=1 $(GO) run ./bench -scale -out BENCH_scale_ci.json -baseline BENCH_scale.json

bench-scale-gate:
	GOMAXPROCS=1 $(GO) run ./bench -scale -out BENCH_scale_ci.json -gate BENCH_scale.json

clean:
	rm -rf $(BIN) BENCH_kernel_ci.json BENCH_scale_ci.json

FORCE:
