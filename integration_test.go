package bufsim

import (
	"testing"

	"bufsim/internal/experiment"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// TestDeterminism: the same seed must reproduce a run bit-for-bit; a
// different seed must not.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) experiment.LongLivedResult {
		return experiment.RunLongLived(experiment.LongLivedConfig{
			Seed: seed, N: 20, BottleneckRate: 10 * units.Mbps,
			BufferPackets: 40,
			Warmup:        5 * units.Second, Measure: 10 * units.Second,
		})
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := run(43)
	if a == c {
		t.Error("different seeds produced identical results")
	}
}

// TestPacketConservation: over a closed run, every data segment a sender
// put on the wire is either delivered (counted by the bottleneck drop
// accounting as enqueued) or dropped — nothing is created or destroyed.
func TestPacketConservation(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  10 * units.Mbps,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(30),
		Stations:        10,
		RTTMin:          40 * units.Millisecond,
		RTTMax:          120 * units.Millisecond,
	})
	flows := workload.StartLongLived(d, 10, tcp.Config{SegmentSize: 1000}, rng.Fork(), units.Second)
	sched.Run(units.Time(20 * units.Second))

	var sent int64
	for _, f := range flows {
		sent += f.Sender.Stats().SegmentsSent
	}
	qs := d.Bottleneck.Queue().Stats()
	offered := qs.EnqueuedPackets + qs.DroppedPackets
	// Every sent segment reaches the bottleneck queue (access links are
	// unlimited), less the handful still serializing on access links.
	if offered > sent {
		t.Errorf("bottleneck saw %d packets but senders sent %d", offered, sent)
	}
	if sent-offered > 200 {
		t.Errorf("%d segments vanished between senders and bottleneck", sent-offered)
	}
	// Dequeued + still-queued == enqueued.
	if qs.DequeuedPackets+int64(d.Bottleneck.Queue().Len()) != qs.EnqueuedPackets {
		t.Errorf("queue accounting broken: %+v len=%d", qs, d.Bottleneck.Queue().Len())
	}
	// Receivers' distinct in-order segments can't exceed deliveries.
	var received int64
	for _, f := range flows {
		received += f.Receiver.ReceivedSegments
	}
	if received > d.Bottleneck.DeliveredPackets() {
		t.Errorf("receivers claim %d segments, bottleneck delivered %d",
			received, d.Bottleneck.DeliveredPackets())
	}
}

// TestStreamIntegrityUnderHeavyCongestion: with a brutal 5-packet buffer
// and 20 flows, every receiver must still see a gapless prefix and
// senders must agree with receivers about progress.
func TestStreamIntegrityUnderHeavyCongestion(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(3)
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  5 * units.Mbps,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(5),
		Stations:        20,
		RTTMin:          30 * units.Millisecond,
		RTTMax:          200 * units.Millisecond,
	})
	flows := workload.StartLongLived(d, 20, tcp.Config{SegmentSize: 1000}, rng.Fork(), units.Second)
	sched.Run(units.Time(30 * units.Second))
	for i, f := range flows {
		snd, rcv := f.Sender, f.Receiver
		// The sender's cumulative-ACK point can never pass the
		// receiver's delivery point.
		if got := rcv.NextExpected(); int64(got) < snd.Outstanding() {
			_ = got // NextExpected is int64 already; see checks below
		}
		if rcv.NextExpected() == 0 {
			t.Errorf("flow %d starved completely", i)
		}
		if snd.Outstanding() < 0 {
			t.Errorf("flow %d negative outstanding", i)
		}
	}
}

// TestShortFlowsConservation: every generated short flow either completes
// or is still active; records never leak or double-complete.
func TestShortFlowsConservation(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(5)
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  10 * units.Mbps,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(50),
		Stations:        20,
		RTTMin:          40 * units.Millisecond,
		RTTMax:          120 * units.Millisecond,
	})
	gen := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     0.6,
		Sizes:    workload.GeometricSize(10),
		TCP:      tcp.Config{SegmentSize: 1000, MaxWindow: 43},
	})
	gen.Start()
	sched.Run(units.Time(20 * units.Second))
	gen.Stop()
	sched.Run(units.Time(60 * units.Second))

	var completed int
	for _, r := range gen.Records {
		if r.Completed != units.Never {
			completed++
			if r.Completed < r.Start {
				t.Errorf("flow completed before starting: %+v", r)
			}
		}
	}
	if int64(len(gen.Records)) != gen.Generated() {
		t.Errorf("records %d != generated %d", len(gen.Records), gen.Generated())
	}
	if completed+gen.Active() != len(gen.Records) {
		t.Errorf("completed %d + active %d != generated %d",
			completed, gen.Active(), len(gen.Records))
	}
	// After a 40 s drain nearly everything should have completed.
	if gen.Active() > len(gen.Records)/50 {
		t.Errorf("%d of %d flows still active after drain", gen.Active(), len(gen.Records))
	}
}

// TestMixedTrafficCoexistence: long flows, short flows and a CBR stream
// share one bottleneck without wedging any component.
func TestMixedTrafficCoexistence(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(9)
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  20 * units.Mbps,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(60),
		Stations:        30,
		RTTMin:          40 * units.Millisecond,
		RTTMax:          120 * units.Millisecond,
	})
	longs := workload.StartLongLived(d, 15, tcp.Config{SegmentSize: 1000}, rng.Fork(), units.Second)
	shorts := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d, RNG: rng.Fork(), Load: 0.2,
		Sizes: workload.ParetoSize{Shape: 1.3, Min: 2, Max: 500},
		TCP:   tcp.Config{SegmentSize: 1000, MaxWindow: 43},
	})
	shorts.Start()
	cbr := workload.NewCBR(workload.CBRConfig{
		Dumbbell: d, Station: d.Station(29),
		Rate: 500 * units.Kbps, PacketSize: 200,
		Jitter: 0.2, RNG: rng.Fork(),
	})
	cbr.Start()

	sched.Run(units.Time(30 * units.Second))
	busy := d.Bottleneck.BusyTime()
	sched.Run(units.Time(50 * units.Second))

	if util := d.Bottleneck.Utilization(busy, units.Time(30*units.Second)); util < 0.9 {
		t.Errorf("mixed-traffic utilization = %v", util)
	}
	for i, f := range longs {
		if f.Sender.Stats().SegmentsSent == 0 {
			t.Errorf("long flow %d never sent", i)
		}
	}
	if shorts.Generated() < 50 {
		t.Errorf("short flows barely generated: %d", shorts.Generated())
	}
	if cbr.Received == 0 {
		t.Error("CBR stream fully starved")
	}
	if cbr.LossRate() > 0.6 {
		t.Errorf("CBR loss %v implausible", cbr.LossRate())
	}
}

// TestPublicAPISmoke: the README quickstart, as a test.
func TestPublicAPISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	link := Link{Rate: OC3, RTT: 100 * Millisecond}
	if link.RuleOfThumb() != 1938 {
		t.Errorf("RuleOfThumb = %d, want 1938", link.RuleOfThumb())
	}
	if link.SqrtRule(400) != 97 {
		t.Errorf("SqrtRule = %d, want 97", link.SqrtRule(400))
	}
	res := Simulate(Simulation{
		Link: link, Flows: 400, BufferPackets: link.SqrtRule(400),
		RTTSpread: 80 * Millisecond,
		Warmup:    10 * Second, Measure: 20 * Second,
	})
	if res.Utilization < 0.97 {
		t.Errorf("README quickstart utilization = %v, want ~0.99", res.Utilization)
	}
}
