package bufsim_test

import (
	"testing"

	"bufsim"
)

// TestSimulateAdversary drives the facade for every pattern: the pulse
// train must defeat even a full-BDP buffer, the AIMD cohort must read
// synchronized, and the parking lot must report a loaded chain.
func TestSimulateAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (scaled) adversarial scenarios")
	}
	link := bufsim.Link{Rate: 20 * bufsim.Mbps, RTT: 80 * bufsim.Millisecond}
	base := bufsim.AdversarySimulation{
		Seed: 7, Link: link, Flows: 8, BufferPackets: link.BDP(),
		Warmup: 2 * bufsim.Second, Measure: 4 * bufsim.Second,
	}

	pulse := base
	pulse.Pattern = bufsim.AdversaryPulse
	aud := bufsim.NewAuditor()
	res := bufsim.SimulateAdversary(pulse, bufsim.WithAudit(aud))
	if err := aud.Err(); err != nil {
		t.Fatalf("pulse under audit: %v", err)
	}
	if res.LossRate == 0 {
		t.Errorf("pulse at a full BDP lost nothing: %+v", res)
	}
	if res.BufferPackets != link.BDP() {
		t.Errorf("buffer echoed as %d, want %d", res.BufferPackets, link.BDP())
	}

	aimd := base
	aimd.Pattern = bufsim.AdversarySyncAIMD
	aimd.BufferPackets = link.BDP() / 10
	if got := bufsim.SimulateAdversary(aimd); got.SyncIndex < 1.2 {
		t.Errorf("aimdsync sync index %.2f, want synchronized (>= 1.2)", got.SyncIndex)
	}

	lot := base
	lot.Pattern = bufsim.AdversaryParkingLot
	if got := bufsim.SimulateAdversary(lot); got.Utilization <= 0 || got.SyncIndex != 0 {
		t.Errorf("parking lot: %+v", got)
	}
}

// TestSimulateAdversaryValidate pins the config checks.
func TestSimulateAdversaryValidate(t *testing.T) {
	if err := (bufsim.AdversarySimulation{}).Validate(); err == nil {
		t.Error("zero Flows did not error")
	}
	if err := (bufsim.AdversarySimulation{Flows: 4, BufferPackets: -1}).Validate(); err == nil {
		t.Error("negative buffer did not error")
	}
	if err := (bufsim.AdversarySimulation{Flows: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestParseAdversary covers the facade's name round-trip.
func TestParseAdversary(t *testing.T) {
	for _, name := range bufsim.AdversaryNames() {
		p, err := bufsim.ParseAdversary(name)
		if err != nil {
			t.Fatalf("ParseAdversary(%q): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("ParseAdversary(%q) = %v", name, p)
		}
	}
	if _, err := bufsim.ParseAdversary("no-such-pattern"); err == nil {
		t.Error("unknown pattern did not error")
	}
}
