// Tracereplay drives the simulator with a recorded flow-level trace
// instead of a synthetic arrival process: the bundled trace.csv holds a
// minute of Poisson arrivals with heavy-tailed sizes (the shape a NetFlow
// export reduces to). The example replays it against three buffer sizes
// and reports what the flows experienced.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bufsim"
)

func main() {
	log.SetFlags(0)
	path := filepath.Join("examples", "tracereplay", "trace.csv")
	if _, err := os.Stat(path); err != nil {
		path = "trace.csv" // run from the example directory
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open trace: %v (run from the repository root)", err)
	}
	defer f.Close()
	flows, err := bufsim.ParseTrace(f)
	if err != nil {
		log.Fatal(err)
	}

	link := bufsim.Link{Rate: 20 * bufsim.Mbps, RTT: 100 * bufsim.Millisecond}

	// This trace is dominated by short/medium flows at moderate load, so
	// the applicable rule is §4's burst-driven short-flow bound, not
	// RTT x C (there are not enough concurrent long flows for the sqrt
	// rule's n to be large). Estimate the load and the mean flow size
	// from the trace itself.
	var segments int64
	sizes := make([]int64, len(flows))
	for i, fl := range flows {
		segments += fl.Size
		sizes[i] = fl.Size
	}
	spanSec := (flows[len(flows)-1].Start - flows[0].Start).Seconds()
	load := float64(segments*8000) / spanSec / float64(link.Rate)
	bound := link.ShortFlowBufferForSizes(load, 0.025, sizes, 43)

	fmt.Printf("replaying %d recorded flows over %v (RTT %v)\n", len(flows), link.Rate, link.RTT)
	fmt.Printf("trace offers load %.2f, mean flow %d segments (heavy-tailed)\n",
		load, segments/int64(len(flows)))
	fmt.Printf("short-flow bound from the trace's own burst moments: %.0f packets\n\n", bound)
	fmt.Println("buffer              pkts    completed    AFCT")

	for _, tc := range []struct {
		name   string
		buffer int
	}{
		{"unlimited", 0},
		{"short-flow bound", int(bound)},
		{"starved", 8},
	} {
		res := bufsim.SimulateTrace(bufsim.TraceSimulation{
			Seed:          1,
			Link:          link,
			Flows:         flows,
			BufferPackets: tc.buffer,
			RTTSpread:     80 * bufsim.Millisecond,
		})
		fmt.Printf("%-18s %6d   %6d/%d   %6.0fms\n",
			tc.name, tc.buffer, res.Completed, len(flows), res.AFCT.Milliseconds())
	}
	fmt.Println("\nThe bound-sized buffer tracks the infinite-buffer completion times;")
	fmt.Println("starving it shows what under-buffering costs. Swap trace.csv for your")
	fmt.Println("own start_seconds,size_segments export to answer the question for")
	fmt.Println("traffic you actually carry.")
}
