// Manyflows demonstrates the paper's headline result (§3): as the number
// of desynchronized long-lived flows grows, the buffer needed for full
// utilization shrinks like 1/sqrt(n). The example sweeps n at a fixed
// buffer of RTT x C / sqrt(n) and shows utilization staying high while
// the buffer collapses — the "remove 99% of the buffers" argument.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	link := bufsim.Link{Rate: 40 * bufsim.Mbps, RTT: 100 * bufsim.Millisecond}
	rot := link.RuleOfThumb()
	fmt.Printf("bottleneck %v, RTT %v, rule-of-thumb buffer = %d packets\n\n",
		link.Rate, link.RTT, rot)
	fmt.Println("flows   buffer(pkts)  vs rule-of-thumb   model-util   sim-util")

	for _, n := range []int{25, 100, 400} {
		buffer := link.SqrtRule(n)
		res := bufsim.Simulate(bufsim.Simulation{
			Seed:          int64(n),
			Link:          link,
			Flows:         n,
			BufferPackets: buffer,
			RTTSpread:     80 * bufsim.Millisecond,
			Warmup:        15 * bufsim.Second,
			Measure:       30 * bufsim.Second,
		})
		fmt.Printf("%5d   %12d   %15.1f%%   %9.2f%%   %7.2f%%\n",
			n, buffer, 100*float64(buffer)/float64(rot),
			100*link.PredictUtilization(n, buffer), 100*res.Utilization)
	}

	fmt.Println()
	fmt.Println("The same scaling at backbone rates (no simulation, rules only):")
	backbone := bufsim.Link{Rate: 10 * bufsim.Gbps, RTT: 250 * bufsim.Millisecond}
	fmt.Printf("  10 Gb/s x 250 ms rule of thumb: %d packets (%.1f Gbit of DRAM)\n",
		backbone.RuleOfThumb(), float64(backbone.RuleOfThumb())*8000/1e9)
	n := 50000
	fmt.Printf("  with %d flows, sqrt rule:    %d packets (%.1f Mbit — on-chip SRAM)\n",
		n, backbone.SqrtRule(n), float64(backbone.SqrtRule(n))*8000/1e6)
}
