// Shortflows demonstrates the paper's §4 result: flows that never leave
// slow start need only a small buffer that depends on the offered load and
// burst structure — not on the line rate. The example compares the
// analytical M/G/1 bound with simulated flow-completion times at two very
// different line rates and checks Fig. 8's acceptance criterion: with the
// bound-sized buffer, the average flow completion time stays within 12.5%
// of what infinite buffers would deliver.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	const (
		load    = 0.8
		flowLen = 14 // segments; bursts of 2, 4, 8 in slow start
		maxWin  = 43 // a typical receiver window cap
	)

	// The analytic bound does not mention the line rate at all.
	bound := bufsim.Link{}.ShortFlowBuffer(load, 0.025, flowLen, maxWin)
	fmt.Printf("M/G/1 bound for load %.1f, %d-segment flows, P(drop)<=2.5%%: %.0f packets\n\n",
		load, flowLen, bound)

	for _, rate := range []bufsim.BitRate{20 * bufsim.Mbps, 80 * bufsim.Mbps} {
		link := bufsim.Link{Rate: rate, RTT: 100 * bufsim.Millisecond}
		base := bufsim.SimulateShortFlows(bufsim.ShortFlowSimulation{
			Seed: 1, Link: link, Load: load, FlowLength: flowLen, MaxWindow: maxWin,
			Warmup: 5 * bufsim.Second, Measure: 20 * bufsim.Second,
		})
		sized := bufsim.SimulateShortFlows(bufsim.ShortFlowSimulation{
			Seed: 1, Link: link, Load: load, FlowLength: flowLen, MaxWindow: maxWin,
			BufferPackets: int(bound),
			Warmup:        5 * bufsim.Second, Measure: 20 * bufsim.Second,
		})
		rot := link.RuleOfThumb()
		degrade := 100 * (float64(sized.AFCT)/float64(base.AFCT) - 1)
		fmt.Printf("%8v: AFCT %6.1fms (infinite buffers) -> %6.1fms with just %.0f packets "+
			"(+%.1f%%; rule of thumb would be %d packets)\n",
			rate, base.AFCT.Milliseconds(), sized.AFCT.Milliseconds(), bound, degrade, rot)
	}
	fmt.Println("\nThe buffer that suffices is the same at both rates, and the AFCT penalty")
	fmt.Println("stays within Fig. 8's 12.5% budget — short-flow buffering is load- and")
	fmt.Println("burst-driven, not rate-driven. A future 1 Tb/s router needs the same few")
	fmt.Println("dozen packets of buffering for this traffic as a 10 Mb/s router today.")
}
