// Singleflow reproduces the intuition behind the rule of thumb (the
// paper's §2 and Figs. 2–5): one long-lived TCP flow through a bottleneck,
// simulated at three buffer sizes. With B = RTT x C the queue drains to
// exactly zero as the sender pauses after halving its window; smaller
// buffers starve the link; larger ones only add delay.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	link := bufsim.Link{Rate: 10 * bufsim.Mbps, RTT: 100 * bufsim.Millisecond}
	fmt.Printf("bottleneck %v, RTT %v, BDP = %d packets\n\n",
		link.Rate, link.RTT, link.BDP())

	for _, factor := range []float64{0.125, 1.0, 2.0} {
		res := bufsim.SimulateSingleFlow(link, factor, 1)
		regime := "exactly buffered (Fig. 3): queue just touches zero, link stays busy"
		switch {
		case factor < 1:
			regime = "underbuffered (Fig. 4): link goes idle while the sender pauses"
		case factor > 1:
			regime = "overbuffered (Fig. 5): full throughput but a standing queue adds delay"
		}
		fmt.Printf("buffer %.3fx BDP = %4d packets -> utilization %6.2f%%, "+
			"mean queue %5.1f, min queue %3.0f\n    %s\n\n",
			factor, res.BufferPackets, 100*res.Utilization,
			res.MeanQueue, res.MinQueueSeen, regime)
	}

	// Show the first seconds of the sawtooth numerically: window and
	// queue rise together, then the drop halves the window and the
	// buffer absorbs the pause.
	res := bufsim.SimulateSingleFlow(link, 1.0, 1)
	fmt.Println("sawtooth samples (t, cwnd, queue):")
	step := len(res.CwndTimes) / 24
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.CwndTimes) && i < 24*step; i += step {
		fmt.Printf("  t=%7.2fs  W=%6.1f  Q=%5.0f\n",
			res.CwndTimes[i], res.CwndValues[i], res.QueueValues[i])
	}
}
