// Quickstart: size a router buffer with the paper's rules, predict the
// resulting utilization, and verify the prediction with a packet-level
// simulation — in about twenty lines.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	// A congested 155 Mb/s (OC3) link whose flows average a 100 ms RTT.
	link := bufsim.Link{Rate: bufsim.OC3, RTT: 100 * bufsim.Millisecond}

	// The classical rule-of-thumb vs the paper's sqrt(n) rule.
	n := 400
	fmt.Printf("rule of thumb:     %5d packets\n", link.RuleOfThumb())
	fmt.Printf("RTT*C/sqrt(%d):   %5d packets (%.0f%% smaller)\n",
		n, link.SqrtRule(n),
		100*(1-float64(link.SqrtRule(n))/float64(link.RuleOfThumb())))

	// What does the Gaussian model predict for the smaller buffer?
	buffer := link.SqrtRule(n)
	fmt.Printf("model predicts:    %.2f%% utilization\n",
		100*link.PredictUtilization(n, buffer))

	// Check it with a packet-level simulation of 400 TCP Reno flows.
	fmt.Printf("simulating %d flows...\n", n)
	res := bufsim.Simulate(bufsim.Simulation{
		Seed:          1,
		Link:          link,
		Flows:         n,
		BufferPackets: buffer,
		RTTSpread:     80 * bufsim.Millisecond,
		Warmup:        15 * bufsim.Second,
		Measure:       30 * bufsim.Second,
	})
	fmt.Printf("measured:          %.2f%% utilization (loss %.2f%%, mean queue %.0f pkts)\n",
		100*res.Utilization, 100*res.LossRate, res.MeanQueuePackets)
}
