// Hardware walks the paper's §1.3 argument: at backbone rates the
// rule-of-thumb buffer cannot be built sensibly from commodity memory,
// while the sqrt(n) buffer fits on the packet-processor die. For each line
// rate it prints both buffers and what they would take to build.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	const rtt = 250 * bufsim.Millisecond
	flows := map[bufsim.BitRate]int{
		bufsim.OC3:       400,    // the paper's lab scale
		bufsim.OC48:      10000,  // "a 2.5Gb/s link carrying 10,000 flows"
		10 * bufsim.Gbps: 50000,  // "a 10Gb/s link carrying 50,000 flows"
		40 * bufsim.Gbps: 200000, // the paper's state-of-the-art linecard
	}

	for _, rate := range []bufsim.BitRate{bufsim.OC3, bufsim.OC48, 10 * bufsim.Gbps, 40 * bufsim.Gbps} {
		n := flows[rate]
		link := bufsim.Link{Rate: rate, RTT: rtt}
		rot := link.RuleOfThumb()
		small := link.SqrtRule(n)

		fmt.Printf("== %v, %d flows, %v RTT ==\n", rate, n, rtt)
		fmt.Printf("  rule of thumb: %7d pkts  -> %s\n", rot, link.MemoryFeasibility(rot).Description)
		fmt.Printf("  RTT*C/sqrt(n): %7d pkts  -> %s\n", small, link.MemoryFeasibility(small).Description)
		fmt.Printf("  predicted utilization with the small buffer: %.2f%%\n\n",
			100*link.PredictUtilization(n, small))
	}

	fmt.Println("The 40 Gb/s case is the paper's punchline: ~1.25 GB of buffers needs")
	fmt.Println("hundreds of SRAM chips or a wide DRAM bank that cannot keep up with")
	fmt.Println("8 ns packet times — but divided by sqrt(200,000) it fits on-chip.")
}
