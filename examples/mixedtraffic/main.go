// Mixedtraffic reproduces the paper's Fig. 9 trade-off through the public
// API: short flows competing with long-lived flows complete *faster* when
// the router buffer shrinks from RTT×C to RTT×C/√n, because the standing
// queue — pure delay for everyone — disappears, while utilization barely
// moves.
package main

import (
	"fmt"

	"bufsim"
)

func main() {
	link := bufsim.Link{Rate: 50 * bufsim.Mbps, RTT: 100 * bufsim.Millisecond}
	const nLong = 100

	fmt.Printf("bottleneck %v, %d long-lived flows + short flows at 20%% load\n\n",
		link.Rate, nLong)
	fmt.Println("buffer            pkts   short-flow AFCT   utilization   mean queue")

	for _, tc := range []struct {
		name   string
		buffer int
	}{
		{"RTT*C (thumb)", link.RuleOfThumb()},
		{"RTT*C/sqrt(n)", link.SqrtRule(nLong)},
	} {
		res := bufsim.SimulateMix(bufsim.MixSimulation{
			Seed:          1,
			Link:          link,
			LongFlows:     nLong,
			ShortLoad:     0.2,
			BufferPackets: tc.buffer,
			RTTSpread:     80 * bufsim.Millisecond,
			Warmup:        15 * bufsim.Second,
			Measure:       30 * bufsim.Second,
		})
		fmt.Printf("%-16s %5d   %12.0fms   %10.1f%%   %7.0f pkts\n",
			tc.name, tc.buffer, res.AFCT.Milliseconds(),
			100*res.Utilization, res.MeanQueue)
	}

	fmt.Println("\nThe smaller buffer trades ~1-2 points of utilization for a much")
	fmt.Println("faster network as experienced by short flows — the paper's Fig. 9.")
}
