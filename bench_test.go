// Benchmarks regenerating every figure and table in the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment
// driver and reports the headline numbers as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at a scaled-down size, and
//
//	go test -bench=. -benchmem -paperscale -timeout 4h
//
// runs the published parameters (OC3 line rate, 100-400 flows, full
// ladders). One benchmark iteration is one full experiment, so b.N is
// effectively 1 at default -benchtime.
package bufsim

import (
	"flag"
	"testing"

	"bufsim/internal/experiment"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

var paperScale = flag.Bool("paperscale", false, "run benchmarks at the paper's full parameters")

// quickOr returns q unless -paperscale is set, in which case zero values
// let the experiment defaults (the paper's parameters) apply.
func rate(q units.BitRate) units.BitRate {
	if *paperScale {
		return 0
	}
	return q
}

func dur(q units.Duration) units.Duration {
	if *paperScale {
		return 0
	}
	return q
}

// BenchmarkFig2SingleFlowSawtooth: B = RTT x C, one flow; the utilization
// must be ~100% and the queue must touch (near) zero each cycle (Figs. 2/3).
func BenchmarkFig2SingleFlowSawtooth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunSingleFlow(experiment.SingleFlowConfig{BufferFactor: 1})
		b.ReportMetric(100*res.Utilization, "util%")
		b.ReportMetric(res.MinQueueSeen, "minQueue_pkts")
		b.ReportMetric(res.MeanQueue, "meanQueue_pkts")
	}
}

// BenchmarkFig4Underbuffered: B = BDP/8; throughput is lost (Fig. 4).
func BenchmarkFig4Underbuffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunSingleFlow(experiment.SingleFlowConfig{BufferFactor: 0.125})
		b.ReportMetric(100*res.Utilization, "util%")
	}
}

// BenchmarkFig5Overbuffered: B = 2 x BDP; full throughput, standing queue
// (Fig. 5).
func BenchmarkFig5Overbuffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunSingleFlow(experiment.SingleFlowConfig{BufferFactor: 2})
		b.ReportMetric(100*res.Utilization, "util%")
		b.ReportMetric(res.MinQueueSeen, "minQueue_pkts")
	}
}

// BenchmarkFig6WindowDistribution: the aggregate congestion window is
// approximately Gaussian; KS distance is the fit metric (Fig. 6).
func BenchmarkFig6WindowDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.WindowDistConfig{Seed: 1, N: 200}
		if !*paperScale {
			cfg.N = 100
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Warmup, cfg.Measure = 15*units.Second, 40*units.Second
		}
		res := experiment.RunWindowDist(cfg)
		b.ReportMetric(res.KS, "KS")
		b.ReportMetric(res.Mean, "aggW_mean")
		b.ReportMetric(res.StdDev, "aggW_sd")
	}
}

// BenchmarkFig7MinBufferLongFlows: minimum buffer for 98/99.5/99.9%
// utilization vs n, against RTTxC/sqrt(n) (Fig. 7). Reports the measured
// minimum buffer as a multiple of the sqrt rule, averaged over the sweep.
func BenchmarkFig7MinBufferLongFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.MinBufferConfig{Seed: 1}
		if !*paperScale {
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Ns = []int{50, 100, 200}
			cfg.Targets = []float64{0.98, 0.995}
			cfg.LadderPoints = 8
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		res := experiment.RunMinBufferSweep(cfg)
		var ratioSum float64
		for _, p := range res.Points {
			ratioSum += float64(p.MinBuffer) / float64(p.SqrtRule)
		}
		b.ReportMetric(ratioSum/float64(len(res.Points)), "minBuf/sqrtRule")
		b.ReportMetric(float64(res.BDPPackets), "BDP_pkts")
	}
}

// BenchmarkFig8ShortFlowBuffer: minimum buffer keeping short-flow AFCT
// within 12.5% of infinite buffers, vs the M/G/1 model (Fig. 8). The
// headline check is rate independence: metric is the spread of the
// minimum buffer across line rates.
func BenchmarkFig8ShortFlowBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.ShortFlowBufferConfig{Seed: 1}
		if !*paperScale {
			cfg.Rates = []units.BitRate{20 * units.Mbps, 60 * units.Mbps}
			cfg.Warmup, cfg.Measure = 5*units.Second, 15*units.Second
		}
		points := experiment.RunShortFlowBuffer(cfg)
		minB, maxB := points[0].MinBuffer, points[0].MinBuffer
		var model float64
		for _, p := range points {
			if p.MinBuffer < minB {
				minB = p.MinBuffer
			}
			if p.MinBuffer > maxB {
				maxB = p.MinBuffer
			}
			model = p.ModelBuffer
		}
		b.ReportMetric(float64(minB), "minBuf_lowRate")
		b.ReportMetric(float64(maxB), "minBuf_highRate")
		b.ReportMetric(model, "modelBuf")
	}
}

// BenchmarkFig9AFCTComparison: mixed traffic; small buffers complete short
// flows faster than rule-of-thumb buffers (Fig. 9). Metric: AFCT ratio
// (rule-of-thumb / sqrt-rule) — above 1 means the paper's claim holds.
func BenchmarkFig9AFCTComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.AFCTComparisonConfig{Seed: 1}
		if !*paperScale {
			cfg.NLong = 60
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		res := experiment.RunAFCTComparison(cfg)
		b.ReportMetric(float64(res.RuleThumb.AFCT)/float64(res.SqrtRule.AFCT), "AFCT_ratio")
		b.ReportMetric(res.SqrtRule.AFCT.Milliseconds(), "AFCT_small_ms")
		b.ReportMetric(res.RuleThumb.AFCT.Milliseconds(), "AFCT_large_ms")
		b.ReportMetric(100*res.SqrtRule.Utilization, "util_small%")
	}
}

// BenchmarkFig9ParetoFlowSizes: §5.1.3's check that heavy-tailed flow
// sizes give "essentially identical results".
func BenchmarkFig9ParetoFlowSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.AFCTComparisonConfig{
			Seed:  1,
			Sizes: workload.ParetoSize{Shape: 1.2, Min: 2, Max: 2000},
		}
		if !*paperScale {
			cfg.NLong = 60
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		res := experiment.RunAFCTComparison(cfg)
		b.ReportMetric(float64(res.RuleThumb.AFCT)/float64(res.SqrtRule.AFCT), "AFCT_ratio")
	}
}

// BenchmarkFig10UtilizationTable: the Cisco-GSR table — model vs simulated
// utilization at 0.5/1/2/3x RTTxC/sqrt(n) (Fig. 10). Metric: worst-row
// simulated utilization at the 1x rule and at 2x.
func BenchmarkFig10UtilizationTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.UtilizationTableConfig{Seed: 1}
		if !*paperScale {
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Ns = []int{100, 200}
			cfg.Factors = []float64{0.5, 1, 2}
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		rows := experiment.RunUtilizationTable(cfg)
		worst1x, worst2x := 1.0, 1.0
		for _, r := range rows {
			if r.Factor == 1 && r.SimUtil < worst1x {
				worst1x = r.SimUtil
			}
			if r.Factor == 2 && r.SimUtil < worst2x {
				worst2x = r.SimUtil
			}
		}
		b.ReportMetric(100*worst1x, "worstUtil@1x%")
		b.ReportMetric(100*worst2x, "worstUtil@2x%")
	}
}

// BenchmarkREDAblation: the Fig. 10 subset under RED — the result is
// expected to hold for other queueing disciplines (§5.1).
func BenchmarkREDAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.UtilizationTableConfig{Seed: 1, UseRED: true}
		if !*paperScale {
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Ns = []int{100}
			cfg.Factors = []float64{1, 2}
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		} else {
			cfg.Factors = []float64{1, 2}
		}
		rows := experiment.RunUtilizationTable(cfg)
		worst := 1.0
		for _, r := range rows {
			if r.SimUtil < worst {
				worst = r.SimUtil
			}
		}
		b.ReportMetric(100*worst, "worstUtil%")
	}
}

// BenchmarkFig11ProductionMix: the Stanford production-network table —
// utilization vs buffer for a heavy-tailed live-traffic mix (Fig. 11).
func BenchmarkFig11ProductionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.ProductionConfig{Seed: 1}
		if !*paperScale {
			cfg.NLong = 40
			cfg.Buffers = []int{46, 85, 500}
			cfg.Warmup, cfg.Measure = 10*units.Second, 25*units.Second
		}
		rows := experiment.RunProduction(cfg)
		b.ReportMetric(100*rows[0].Utilization, "util@smallest%")
		b.ReportMetric(100*rows[len(rows)-1].Utilization, "util@largest%")
		b.ReportMetric(rows[0].MeanConcurrent, "concurrentFlows")
	}
}

// BenchmarkSyncAblation: §3's synchronization claim — the sync index
// (aggregate window CoV over the CLT prediction) falls toward 1 as n
// grows.
func BenchmarkSyncAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.SyncConfig{Seed: 1}
		if !*paperScale {
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Ns = []int{10, 100}
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		points := experiment.RunSyncAblation(cfg)
		b.ReportMetric(points[0].SyncIndex, "syncIdx_fewFlows")
		b.ReportMetric(points[len(points)-1].SyncIndex, "syncIdx_manyFlows")
	}
}

// BenchmarkPacingAblation: the TR's extension — sender pacing recovers
// the utilization that tiny buffers cost when n is small. Metrics: paced
// vs unpaced utilization at 0.25x the sqrt rule.
func BenchmarkPacingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.PacingConfig{Seed: 1, BufferFactors: []float64{0.25}}
		if !*paperScale {
			cfg.N = 20
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		points := experiment.RunPacingAblation(cfg)
		b.ReportMetric(100*points[0].UtilUnpaced, "utilUnpaced%")
		b.ReportMetric(100*points[0].UtilPaced, "utilPaced%")
	}
}

// BenchmarkAccessSmoothing: §4's observation that slow access links smooth
// slow-start bursts toward Poisson (M/D/1) arrivals, shrinking the queue
// tail. Metrics: measured P(Q >= 20) with fast vs slow access links.
func BenchmarkAccessSmoothing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.SmoothingConfig{Seed: 1}
		if !*paperScale {
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Warmup, cfg.Measure = 8*units.Second, 30*units.Second
		}
		points := experiment.RunSmoothing(cfg).Points
		last := len(points) - 1
		b.ReportMetric(points[0].TailProb, "tail_fastAccess")
		b.ReportMetric(points[last].TailProb, "tail_slowAccess")
		b.ReportMetric(points[0].ModelMG1, "tail_MG1bound")
		b.ReportMetric(points[last].ModelMD1, "tail_MD1bound")
	}
}

// BenchmarkInternet2Backbone: §5.3's closing experiment — a backbone link
// at 0.5% of its default one-second buffer shows no measurable
// degradation. Metrics: utilization and P99 queueing delay at the small
// buffer.
func BenchmarkInternet2Backbone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.BackboneConfig{Seed: 1}
		if !*paperScale {
			cfg.BottleneckRate = 600 * units.Mbps
			cfg.N = 600
			cfg.Warmup, cfg.Measure = 8*units.Second, 15*units.Second
		}
		res := experiment.RunBackbone(cfg)
		b.ReportMetric(100*res.Small.Utilization, "util%")
		b.ReportMetric(res.Small.QueueDelayP99.Milliseconds(), "p99delay_ms")
		b.ReportMetric(float64(res.SmallBuffer), "buffer_pkts")
	}
}

// BenchmarkMultiHop: extension — the sqrt(n) rule applied per link on a
// two-bottleneck parking lot (the §5.1 single-congestion-point assumption,
// deliberately violated). Metrics: both links' utilization.
func BenchmarkMultiHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.MultiHopConfig{Seed: 1}
		if !*paperScale {
			cfg.LinkRate = 20 * units.Mbps
			cfg.NPerGroup = 40
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		res := experiment.RunMultiHop(cfg)
		b.ReportMetric(100*res.Util[0], "utilHop1%")
		b.ReportMetric(100*res.Util[1], "utilHop2%")
		b.ReportMetric(100*res.CrossingShare, "crossShare%")
	}
}

// BenchmarkVariantAblation: extension — the sqrt(n) rule across TCP
// flavours (Reno/NewReno/SACK/Tahoe). Metric: each variant's utilization
// at 1x the rule.
func BenchmarkVariantAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.VariantConfig{Seed: 1}
		if !*paperScale {
			cfg.N = 60
			cfg.BottleneckRate = 20 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		points := experiment.RunVariantAblation(cfg)
		for _, p := range points {
			b.ReportMetric(100*p.Utilization, "util_"+p.Variant.String()+"%")
		}
	}
}

// BenchmarkECNAblation: extension — RED marking (with ECN senders) vs RED
// dropping at the same sqrt(n)-rule buffer. Metrics: utilization and loss
// under both.
func BenchmarkECNAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.ECNConfig{Seed: 1}
		if !*paperScale {
			cfg.N = 100
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		res := experiment.RunECN(cfg)
		b.ReportMetric(100*res.Drop.Utilization, "utilDrop%")
		b.ReportMetric(100*res.Mark.Utilization, "utilMark%")
		b.ReportMetric(100*res.Drop.LossRate, "lossDrop%")
		b.ReportMetric(100*res.Mark.LossRate, "lossMark%")
	}
}

// BenchmarkHarpoonSessions: extension — the Fig. 10 ladder under
// closed-loop Harpoon-style session traffic. Metrics: emergent concurrent
// flows and utilization at 0.5x / 1x the calibrated sqrt(n) rule.
func BenchmarkHarpoonSessions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.HarpoonConfig{Seed: 1, Factors: []float64{0.5, 1}}
		if !*paperScale {
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Sessions = 500
			cfg.Warmup, cfg.Measure = 15*units.Second, 25*units.Second
		}
		res := experiment.RunHarpoon(cfg)
		b.ReportMetric(float64(res.CalibratedN), "concurrentFlows")
		b.ReportMetric(100*res.Rows[0].Utilization, "util@0.5x%")
		b.ReportMetric(100*res.Rows[1].Utilization, "util@1x%")
	}
}

// BenchmarkRTTSpreadAblation: §3's mechanism — identical RTTs synchronize
// flows, a few milliseconds of spread desynchronizes them. Metrics: sync
// index and utilization at zero vs 5 ms spread.
func BenchmarkRTTSpreadAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.RTTSpreadConfig{
			Seed:    1,
			Spreads: []units.Duration{0, 5 * units.Millisecond},
		}
		if !*paperScale {
			cfg.N = 100
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 25*units.Second
		}
		points := experiment.RunRTTSpread(cfg)
		b.ReportMetric(points[0].SyncIndex, "syncIdx_identicalRTT")
		b.ReportMetric(points[1].SyncIndex, "syncIdx_5msSpread")
		b.ReportMetric(100*points[0].Utilization, "util_identicalRTT%")
		b.ReportMetric(100*points[1].Utilization, "util_5msSpread%")
	}
}

// BenchmarkCoDelComparison: extension — sqrt(n)-sized drop-tail vs
// rule-of-thumb drop-tail vs CoDel. Metrics: utilization and P99 delay of
// the sqrt(n) and CoDel designs.
func BenchmarkCoDelComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiment.CoDelConfig{Seed: 1}
		if !*paperScale {
			cfg.N = 100
			cfg.BottleneckRate = 40 * units.Mbps
			cfg.Warmup, cfg.Measure = 10*units.Second, 20*units.Second
		}
		rows := experiment.RunCoDel(cfg)
		b.ReportMetric(100*rows[0].Utilization, "util_sqrtn%")
		b.ReportMetric(100*rows[2].Utilization, "util_codel%")
		b.ReportMetric(rows[0].QueueDelayP99.Milliseconds(), "p99_sqrtn_ms")
		b.ReportMetric(rows[2].QueueDelayP99.Milliseconds(), "p99_codel_ms")
	}
}

// BenchmarkKernelEventThroughput measures the raw discrete-event engine:
// how many simulated packet-events per wall-second one OC3 run processes.
func BenchmarkKernelEventThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.RunLongLived(experiment.LongLivedConfig{
			Seed: 1, N: 100, BottleneckRate: units.OC3,
			BufferPackets: 194,
			Warmup:        5 * units.Second, Measure: 10 * units.Second,
		})
		b.ReportMetric(100*res.Utilization, "util%")
	}
}
