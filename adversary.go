package bufsim

import (
	"fmt"

	"bufsim/internal/adversary"
	"bufsim/internal/experiment"
)

// AdversaryPattern names one worst-case traffic pattern from the
// adversarial harness: deterministic workloads built to break exactly
// one statistical assumption behind the RTTxC/sqrt(n) buffer rule
// (desynchronization, burst independence, a single bottleneck).
type AdversaryPattern = adversary.Pattern

// The registered adversarial patterns.
const (
	// AdversaryPulse is a cohort of phase-locked on/off CBR trains whose
	// combined on-phase rate exceeds the bottleneck.
	AdversaryPulse = adversary.PatternPulse
	// AdversarySyncAIMD is an AIMD cohort with identical RTTs and
	// simultaneous starts, so loss epochs stay shared.
	AdversarySyncAIMD = adversary.PatternSyncAIMD
	// AdversaryParkingLot load-balances flows over a multi-bottleneck
	// chain so that no single link is "the" bottleneck.
	AdversaryParkingLot = adversary.PatternParkingLot
)

// ParseAdversary resolves a pattern name or alias (case-insensitive).
func ParseAdversary(s string) (AdversaryPattern, error) { return adversary.ParsePattern(s) }

// AdversaryNames lists the canonical pattern names in registry order.
func AdversaryNames() []string { return adversary.PatternNames() }

// AdversarySimulation configures SimulateAdversary: one adversarial
// pattern against one buffer. Flows is the cohort size (pulse trains,
// AIMD flows, or flows per core link for the parking lot). The Link's
// RTT is every flow's propagation delay — equal RTTs are part of the
// attack, so there is no spread knob here.
type AdversarySimulation struct {
	Seed          int64
	Pattern       AdversaryPattern
	Link          Link
	Flows         int
	BufferPackets int
	Warmup        Duration
	Measure       Duration
}

// Validate reports the first configuration error, or nil.
func (s AdversarySimulation) Validate() error {
	if s.Flows <= 0 {
		return fmt.Errorf("bufsim: AdversarySimulation.Flows must be positive (got %d)", s.Flows)
	}
	if s.BufferPackets < 0 {
		return fmt.Errorf("bufsim: AdversarySimulation.BufferPackets must be >= 0 (got %d)", s.BufferPackets)
	}
	return nil
}

// AdversaryResult reports the failure-mode measurements of one
// adversarial run — the same cell RunAdversarial's table would hold.
type AdversaryResult struct {
	// BufferPackets echoes the per-bottleneck buffer actually used
	// (the rule-of-thumb BDP when the config left it zero).
	BufferPackets int
	// Utilization is the bottleneck's busy fraction over the
	// measurement window (the worst core link for the parking lot).
	Utilization float64
	// LossRate is the bottleneck queues' drop fraction of offered
	// packets.
	LossRate float64
	// MeanQueuePackets and PeakQueuePackets are the bottleneck queue
	// occupancy (worst link for the parking lot).
	MeanQueuePackets float64
	PeakQueuePackets int
	// SyncIndex is the aggregate-window synchronization index, measured
	// for the AIMD cohort and 0 for the other patterns.
	SyncIndex float64
}

// SimulateAdversary runs one adversarial pattern and reports how the
// chosen buffer fares against it. WithAudit and WithCache compose as
// with Simulate; the TCP-shaping options do not apply — the patterns
// fix their own transport behaviour by design.
func SimulateAdversary(cfg AdversarySimulation, opts ...Option) AdversaryResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := applyOptions(opts)
	row := experiment.RunAdversaryScenario(experiment.AdversaryScenario{
		Seed:           cfg.Seed,
		Pattern:        cfg.Pattern,
		N:              cfg.Flows,
		BottleneckRate: cfg.Link.Rate,
		RTT:            cfg.Link.RTT,
		SegmentSize:    cfg.Link.segment(),
		BufferPackets:  cfg.BufferPackets,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          o.audit,
		Cache:          o.cache,
	})
	return AdversaryResult{
		BufferPackets:    row.BufferPackets,
		Utilization:      row.Utilization,
		LossRate:         row.LossRate,
		MeanQueuePackets: row.MeanQueue,
		PeakQueuePackets: row.PeakQueue,
		SyncIndex:        row.SyncIndex,
	}
}
