package bufsim

import (
	"math"
	"strings"
	"testing"
)

func TestLinkSizingRules(t *testing.T) {
	// The abstract's example: 10 Gb/s, 250 ms, 2.5 Gbit rule-of-thumb.
	l := Link{Rate: 10 * Gbps, RTT: 250 * Millisecond}
	if got := l.RuleOfThumb(); got != 312500 {
		t.Errorf("RuleOfThumb = %d, want 312500 packets", got)
	}
	if got := l.SqrtRule(10000); got != 3125 {
		t.Errorf("SqrtRule(10000) = %d, want 3125 (a 99%% reduction)", got)
	}
	if l.BDP() != l.RuleOfThumb() {
		t.Error("BDP should equal the rule of thumb")
	}
	// Custom segment size halves the packet count for 2x packets.
	l2 := Link{Rate: 10 * Gbps, RTT: 250 * Millisecond, SegmentSize: 500}
	if got := l2.RuleOfThumb(); got != 625000 {
		t.Errorf("RuleOfThumb(500B) = %d", got)
	}
}

func TestLinkPredictUtilization(t *testing.T) {
	l := Link{Rate: OC3, RTT: 100 * Millisecond}
	u1 := l.PredictUtilization(400, l.SqrtRule(400))
	u2 := l.PredictUtilization(400, 2*l.SqrtRule(400))
	if !(u1 > 0.97 && u2 >= u1) {
		t.Errorf("predicted utilizations: 1x=%v 2x=%v", u1, u2)
	}
}

func TestLinkShortFlowBuffer(t *testing.T) {
	l := Link{Rate: OC3, RTT: 100 * Millisecond}
	b := l.ShortFlowBuffer(0.8, 0.025, 14, 43)
	if b < 10 || b > 100 {
		t.Errorf("ShortFlowBuffer = %v, want tens of packets", b)
	}
	// Independent of the link: a 1 Tb/s link needs the same buffer (§4).
	huge := Link{Rate: 1000 * Gbps, RTT: 300 * Millisecond}
	if got := huge.ShortFlowBuffer(0.8, 0.025, 14, 43); got != b {
		t.Errorf("short-flow buffer depends on the link: %v vs %v", got, b)
	}
}

func TestShortFlowBufferForSizes(t *testing.T) {
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	// A degenerate sample reproduces the fixed-length bound.
	fixed := l.ShortFlowBuffer(0.6, 0.025, 14, 43)
	sampled := l.ShortFlowBufferForSizes(0.6, 0.025, []int64{14, 14, 14}, 43)
	if math.Abs(fixed-sampled) > 1e-9 {
		t.Errorf("uniform sample bound %v != fixed bound %v", sampled, fixed)
	}
	// A heavy-tailed sample needs more buffer than its mean length
	// suggests: the big flows emit many max-window bursts.
	tail := l.ShortFlowBufferForSizes(0.6, 0.025, []int64{2, 2, 2, 2, 2, 2, 2, 2, 2, 1000}, 43)
	meanLen := int64((2*9 + 1000) / 10)
	naive := l.ShortFlowBuffer(0.6, 0.025, meanLen, 43)
	if tail <= naive {
		t.Errorf("heavy-tail bound %v not above mean-length bound %v", tail, naive)
	}
}

func TestSimulateMatchesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	res := Simulate(Simulation{
		Seed:          1,
		Link:          l,
		Flows:         50,
		BufferPackets: 2 * l.SqrtRule(50),
		RTTSpread:     80 * Millisecond,
		Warmup:        8 * Second,
		Measure:       15 * Second,
	})
	if res.Utilization < 0.93 {
		t.Errorf("Utilization = %v", res.Utilization)
	}
	if res.LossRate <= 0 || res.MeanQueuePackets <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestSimulateREDRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	res := Simulate(Simulation{
		Seed: 2, Link: l, Flows: 50, BufferPackets: 3 * l.SqrtRule(50),
		RTTSpread: 80 * Millisecond, RED: true,
		Warmup: 8 * Second, Measure: 15 * Second,
	})
	if res.Utilization < 0.85 {
		t.Errorf("RED Utilization = %v", res.Utilization)
	}
}

func TestSimulateSingleFlowSawtooth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	l := Link{Rate: 10 * Mbps, RTT: 100 * Millisecond}
	res := SimulateSingleFlow(l, 1.0, 1)
	if res.BDPPackets != 125 {
		t.Fatalf("BDP = %d", res.BDPPackets)
	}
	if res.Utilization < 0.999 {
		t.Errorf("Utilization = %v, want ~1", res.Utilization)
	}
	if len(res.CwndTimes) != len(res.CwndValues) || len(res.CwndTimes) == 0 {
		t.Fatal("missing cwnd series")
	}
	// The sawtooth oscillates between ~BDP and ~BDP+B.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range res.CwndValues {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 60 {
		t.Errorf("cwnd range [%v, %v] is not a sawtooth", lo, hi)
	}
}

func TestSimulateShortFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	unlimited := SimulateShortFlows(ShortFlowSimulation{
		Seed: 3, Link: l, Load: 0.7, FlowLength: 14,
		Warmup: 5 * Second, Measure: 15 * Second,
	})
	if unlimited.Completed < 500 {
		t.Fatalf("completed = %d", unlimited.Completed)
	}
	tiny := SimulateShortFlows(ShortFlowSimulation{
		Seed: 3, Link: l, Load: 0.7, FlowLength: 14, BufferPackets: 2,
		Warmup: 5 * Second, Measure: 15 * Second,
	})
	if tiny.AFCT <= unlimited.AFCT {
		t.Errorf("2-packet buffer AFCT %v should exceed unlimited %v", tiny.AFCT, unlimited.AFCT)
	}
}

func TestSimulateMixSmallBuffersHelpShorts(t *testing.T) {
	if testing.Short() {
		t.Skip("two mixed-traffic simulations")
	}
	link := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	run := func(buffer int) MixResult {
		return SimulateMix(MixSimulation{
			Seed: 1, Link: link, LongFlows: 60, ShortLoad: 0.15,
			BufferPackets: buffer, RTTSpread: 80 * Millisecond,
			Warmup: 10 * Second, Measure: 20 * Second,
		})
	}
	big := run(link.RuleOfThumb())
	small := run(link.SqrtRule(60))
	if big.ShortsCompleted < 100 || small.ShortsCompleted < 100 {
		t.Fatalf("too few shorts: %d/%d", big.ShortsCompleted, small.ShortsCompleted)
	}
	if small.AFCT >= big.AFCT {
		t.Errorf("small-buffer AFCT %v not better than %v", small.AFCT, big.AFCT)
	}
	if small.Utilization < 0.9 {
		t.Errorf("small-buffer utilization = %v", small.Utilization)
	}
}

func TestSimulateTraceReplaysCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	csv := "start_seconds,size_segments\n0.0,14\n0.5,30\n1.0,14\n1.5,8\n"
	flows, err := ParseTrace(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	res := SimulateTrace(TraceSimulation{
		Seed:  1,
		Link:  Link{Rate: 10 * Mbps, RTT: 100 * Millisecond},
		Flows: flows,
	})
	if res.Completed != 4 || res.Censored != 0 {
		t.Fatalf("completed %d / censored %d", res.Completed, res.Censored)
	}
	if res.AFCT <= 0 || res.AFCT > Second {
		t.Errorf("AFCT = %v", res.AFCT)
	}
	// Four small flows on 10 Mb/s: far from saturation.
	if res.Utilization > 0.2 {
		t.Errorf("utilization = %v, want light", res.Utilization)
	}
	// Empty trace is a no-op.
	if got := SimulateTrace(TraceSimulation{Link: Link{Rate: Mbps, RTT: 50 * Millisecond}}); got.Completed != 0 {
		t.Errorf("empty trace: %+v", got)
	}
}

func TestParseHelpers(t *testing.T) {
	d, err := ParseDuration("250ms")
	if err != nil || d != 250*Millisecond {
		t.Errorf("ParseDuration: %v %v", d, err)
	}
	r, err := ParseBitRate("155Mbps")
	if err != nil || r != OC3 {
		t.Errorf("ParseBitRate: %v %v", r, err)
	}
}

func TestMemoryFeasibility(t *testing.T) {
	// The abstract's contrast: 10 Gb/s x 250 ms needs DRAM boards under
	// the rule of thumb, on-chip memory under the sqrt rule.
	l := Link{Rate: 10 * Gbps, RTT: 250 * Millisecond}
	big := l.MemoryFeasibility(l.RuleOfThumb())
	small := l.MemoryFeasibility(l.SqrtRule(50000))
	if big.FitsOnChip {
		t.Error("rule-of-thumb buffer should not fit on chip")
	}
	if big.DRAMKeepsUp {
		t.Error("DRAM should not keep up at 10 Gb/s")
	}
	if !small.FitsOnChip {
		t.Error("sqrt-rule buffer should fit on chip")
	}
	if small.SRAMChips != 1 {
		t.Errorf("sqrt-rule buffer needs %d SRAM chips, want 1", small.SRAMChips)
	}
	if big.Description == "" || small.Description == "" {
		t.Error("descriptions missing")
	}
}

func TestParetoExported(t *testing.T) {
	p := Pareto(1.2, 2, 1000)
	if p.Mean() < 2 || p.Mean() > 1000 {
		t.Errorf("Pareto mean = %v", p.Mean())
	}
}

func TestOptionsOverrideConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	l := Link{Rate: 10 * Mbps, RTT: 100 * Millisecond}
	cfg := Simulation{
		Seed: 4, Link: l, Flows: 20, BufferPackets: 2 * l.SqrtRule(20),
		RTTSpread: 40 * Millisecond, Warmup: 5 * Second, Measure: 10 * Second,
	}
	// An option must win over the config field: Simulate(cfg with
	// Variant=Sack) == Simulate(cfg, WithVariant(Sack)).
	viaField := cfg
	viaField.Variant = Sack
	viaField.Paced = true
	a := Simulate(viaField)
	b := Simulate(cfg, WithVariant(Sack), WithPacing(true))
	if a != b {
		t.Errorf("option path diverges from config path:\nfield  %+v\noption %+v", a, b)
	}
	// And a different variant must actually change the run.
	c := Simulate(cfg, WithVariant(Tahoe), WithPacing(true))
	if b == c {
		t.Error("WithVariant had no effect")
	}
}

func TestWithMetricsDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	l := Link{Rate: 10 * Mbps, RTT: 100 * Millisecond}
	cfg := Simulation{
		Seed: 5, Link: l, Flows: 20, BufferPackets: 2 * l.SqrtRule(20),
		RTTSpread: 40 * Millisecond, Warmup: 5 * Second, Measure: 10 * Second,
	}
	plain := Simulate(cfg)
	reg := NewRegistry()
	observed := Simulate(cfg, WithMetrics(reg))
	if plain != observed {
		t.Errorf("telemetry changed the result:\noff %+v\non  %+v", plain, observed)
	}
	snap := reg.Snapshot()
	if snap.Counters["sim.events_processed"] <= 0 {
		t.Error("registry not populated")
	}
	if snap.Counters["tcp.flows_tracked"] != 20 {
		t.Errorf("tcp.flows_tracked = %d, want 20", snap.Counters["tcp.flows_tracked"])
	}
}

func TestResultInterface(t *testing.T) {
	// Compact render smoke for every public Result implementation.
	results := []Result{
		SimulationResult{Utilization: 0.99, Timeouts: 3},
		SingleFlowResult{BDPPackets: 125, BufferPackets: 125, Utilization: 1},
		ShortFlowResult{AFCT: 250 * Millisecond, Completed: 10},
		MixResult{AFCT: 300 * Millisecond, ShortsCompleted: 5, Utilization: 0.97},
		TraceResult{Completed: 4, AFCT: 100 * Millisecond},
		Memory{SRAMChips: 1, FitsOnChip: true, Description: "fits"},
	}
	for _, res := range results {
		if res.Table() == "" {
			t.Errorf("%T: empty table", res)
		}
		var sb strings.Builder
		if err := res.WriteJSON(&sb); err != nil {
			t.Errorf("%T: WriteJSON: %v", res, err)
		}
		if !strings.HasPrefix(sb.String(), "{") {
			t.Errorf("%T: JSON output %q", res, sb.String())
		}
	}
}

// TestWithREDHonoredEverywhere checks the option actually changes the
// bottleneck in every scenario that has one: under RED the queue drops
// early and at random, so the run must differ from its drop-tail twin.
func TestWithREDHonoredEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}

	t.Run("single flow", func(t *testing.T) {
		plain := SimulateSingleFlow(l, 1.0, 3)
		red := SimulateSingleFlow(l, 1.0, 3, WithRED(true))
		if plain.MeanQueue == red.MeanQueue {
			t.Error("WithRED did not change the single-flow queue process")
		}
	})
	t.Run("short flows", func(t *testing.T) {
		cfg := ShortFlowSimulation{
			Seed: 3, Link: l, BufferPackets: 40, Load: 0.7, FlowLength: 14,
			Warmup: 3 * Second, Measure: 8 * Second,
		}
		plain := SimulateShortFlows(cfg)
		red := SimulateShortFlows(cfg, WithRED(true))
		if plain == red {
			t.Error("WithRED did not change the short-flow run")
		}
	})
	t.Run("mix", func(t *testing.T) {
		cfg := MixSimulation{
			Seed: 3, Link: l, LongFlows: 20, ShortLoad: 0.1, BufferPackets: 40,
			RTTSpread: 40 * Millisecond, Warmup: 5 * Second, Measure: 10 * Second,
		}
		plain := SimulateMix(cfg)
		red := SimulateMix(cfg, WithRED(true))
		if plain == red {
			t.Error("WithRED did not change the mixed run")
		}
	})
	t.Run("trace", func(t *testing.T) {
		// Offer more than the line rate so the buffer actually fills.
		var flows []TraceFlow
		for i := 0; i < 300; i++ {
			flows = append(flows, TraceFlow{Start: Duration(i) * 20 * Millisecond, Size: 60})
		}
		cfg := TraceSimulation{Seed: 3, Link: l, Flows: flows, BufferPackets: 20}
		plain := SimulateTrace(cfg)
		red := SimulateTrace(cfg, WithRED(true))
		if plain == red {
			t.Error("WithRED did not change the trace run")
		}
	})
}

func TestValidateRTTSpread(t *testing.T) {
	l := Link{Rate: 10 * Mbps, RTT: 50 * Millisecond}
	ok := Simulation{Link: l, RTTSpread: 80 * Millisecond}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := Simulation{Link: l, RTTSpread: 120 * Millisecond}
	err := bad.Validate()
	if err == nil {
		t.Fatal("spread wider than twice the RTT passed validation")
	}
	if !strings.Contains(err.Error(), "RTTSpread") {
		t.Errorf("error does not name the bad field: %v", err)
	}
	if err := (Simulation{Link: l, RTTSpread: -Millisecond}).Validate(); err == nil {
		t.Error("negative spread passed validation")
	}
	if err := (MixSimulation{Link: l, RTTSpread: 120 * Millisecond}).Validate(); err == nil {
		t.Error("MixSimulation did not validate the spread")
	}
	if err := (TraceSimulation{Link: l, RTTSpread: 120 * Millisecond}).Validate(); err == nil {
		t.Error("TraceSimulation did not validate the spread")
	}
	// Simulate panics with the same message instead of crashing deep in
	// the topology layer.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Simulate with invalid spread did not panic")
		}
		if msg, okType := r.(string); !okType || !strings.Contains(msg, "RTTSpread") {
			t.Errorf("panic message does not explain the problem: %v", r)
		}
	}()
	Simulate(Simulation{Seed: 1, Link: l, Flows: 5, BufferPackets: 10,
		RTTSpread: 120 * Millisecond, Warmup: Second, Measure: Second})
}

func TestSimulateReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	l := Link{Rate: 20 * Mbps, RTT: 100 * Millisecond}
	cfg := Simulation{
		Seed: 1, Link: l, Flows: 30, BufferPackets: l.SqrtRule(30),
		RTTSpread: 80 * Millisecond, Warmup: 5 * Second, Measure: 10 * Second,
	}
	a := SimulateReplicated(cfg, 3, WithParallelism(1))
	b := SimulateReplicated(cfg, 3, WithParallelism(3))
	if a != b {
		t.Errorf("replicated results differ across worker counts:\n%+v\n%+v", a, b)
	}
	if a.Replicas != 3 {
		t.Errorf("Replicas = %d, want 3", a.Replicas)
	}
	if a.Min > a.MeanUtilization || a.MeanUtilization > a.Max {
		t.Errorf("mean %v outside [min %v, max %v]", a.MeanUtilization, a.Min, a.Max)
	}
	if a.MeanUtilization < 0.7 || a.MeanUtilization > 1 {
		t.Errorf("MeanUtilization = %v", a.MeanUtilization)
	}
}
