package bufsim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Result is the uniform reporting surface of every simulation outcome:
// a human-readable table and a machine-readable JSON dump. All Simulate*
// return types implement it, so callers can render any outcome through
// one code path:
//
//	res := bufsim.Simulate(cfg)
//	fmt.Print(res.Table())
//	res.WriteJSON(f)
type Result interface {
	// Table renders the result as an aligned plain-text table.
	Table() string
	// WriteJSON writes the result as indented JSON.
	WriteJSON(w io.Writer) error
}

var _ = []Result{
	SimulationResult{},
	SingleFlowResult{},
	ShortFlowResult{},
	MixResult{},
	TraceResult{},
	Memory{},
}

func resultJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func tabulate(fn func(*tabwriter.Writer)) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(tw)
	tw.Flush()
	return sb.String()
}

// Table implements Result.
func (r SimulationResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "utilization\t%.4f\n", r.Utilization)
		fmt.Fprintf(tw, "loss rate\t%.5f\n", r.LossRate)
		fmt.Fprintf(tw, "mean queue (pkts)\t%.1f\n", r.MeanQueuePackets)
		fmt.Fprintf(tw, "retransmit fraction\t%.5f\n", r.RetransmitFraction)
		fmt.Fprintf(tw, "timeouts\t%d\n", r.Timeouts)
		fmt.Fprintf(tw, "queue delay mean\t%v\n", r.QueueDelayMean)
		fmt.Fprintf(tw, "queue delay p99\t%v\n", r.QueueDelayP99)
		fmt.Fprintf(tw, "fairness\t%.4f\n", r.Fairness)
	})
}

// WriteJSON implements Result.
func (r SimulationResult) WriteJSON(w io.Writer) error { return resultJSON(w, r) }

// Table implements Result. The cwnd and queue series are summarized by
// their sample counts; plot them from the slices directly.
func (r SingleFlowResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "BDP (pkts)\t%d\n", r.BDPPackets)
		fmt.Fprintf(tw, "buffer (pkts)\t%d\n", r.BufferPackets)
		fmt.Fprintf(tw, "utilization\t%.4f\n", r.Utilization)
		fmt.Fprintf(tw, "mean queue (pkts)\t%.1f\n", r.MeanQueue)
		fmt.Fprintf(tw, "min queue seen (pkts)\t%.0f\n", r.MinQueueSeen)
		fmt.Fprintf(tw, "cwnd samples\t%d\n", len(r.CwndValues))
		fmt.Fprintf(tw, "queue samples\t%d\n", len(r.QueueValues))
	})
}

// WriteJSON implements Result. The time series are elided — only summary
// scalars and sample counts are written.
func (r SingleFlowResult) WriteJSON(w io.Writer) error {
	return resultJSON(w, struct {
		BDPPackets    int
		BufferPackets int
		Utilization   float64
		MeanQueue     float64
		MinQueueSeen  float64
		CwndSamples   int
		QueueSamples  int
	}{r.BDPPackets, r.BufferPackets, r.Utilization, r.MeanQueue,
		r.MinQueueSeen, len(r.CwndValues), len(r.QueueValues)})
}

// Table implements Result.
func (r ShortFlowResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "AFCT\t%v\n", r.AFCT)
		fmt.Fprintf(tw, "completed\t%d\n", r.Completed)
		fmt.Fprintf(tw, "censored\t%d\n", r.Censored)
	})
}

// WriteJSON implements Result.
func (r ShortFlowResult) WriteJSON(w io.Writer) error { return resultJSON(w, r) }

// Table implements Result.
func (r MixResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "AFCT\t%v\n", r.AFCT)
		fmt.Fprintf(tw, "shorts completed\t%d\n", r.ShortsCompleted)
		fmt.Fprintf(tw, "utilization\t%.4f\n", r.Utilization)
		fmt.Fprintf(tw, "mean queue (pkts)\t%.1f\n", r.MeanQueue)
	})
}

// WriteJSON implements Result.
func (r MixResult) WriteJSON(w io.Writer) error { return resultJSON(w, r) }

// Table implements Result.
func (r TraceResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "completed\t%d\n", r.Completed)
		fmt.Fprintf(tw, "censored\t%d\n", r.Censored)
		fmt.Fprintf(tw, "AFCT\t%v\n", r.AFCT)
		fmt.Fprintf(tw, "utilization\t%.4f\n", r.Utilization)
	})
}

// WriteJSON implements Result.
func (r TraceResult) WriteJSON(w io.Writer) error { return resultJSON(w, r) }

// Table implements Result.
func (m Memory) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "SRAM chips (36 Mbit)\t%d\n", m.SRAMChips)
		fmt.Fprintf(tw, "DRAM chips (1 Gbit)\t%d\n", m.DRAMChips)
		fmt.Fprintf(tw, "DRAM keeps up\t%v\n", m.DRAMKeepsUp)
		fmt.Fprintf(tw, "fits on chip\t%v\n", m.FitsOnChip)
		fmt.Fprintf(tw, "verdict\t%s\n", m.Description)
	})
}

// WriteJSON implements Result.
func (m Memory) WriteJSON(w io.Writer) error { return resultJSON(w, m) }
